// Package coord is the fault-tolerant multi-host front door of the
// analysis service: an HTTP coordinator that routes POST /v1/analyze
// and GET /v1/report/{hash} to N backend `qssd serve` hosts by the same
// canonical-hash-prefix function the in-process shards use
// (server.PrefixIndex), and absorbs real infrastructure faults without
// ever changing an answer.
//
// The safety argument is content addressing: reports are byte-identical
// across isomorphic requests and across hosts (PR 7/8), so every retry,
// hedge, failover and reissue is idempotent — the coordinator can be as
// aggressive as it likes about *where* and *how often* work runs,
// because *what* comes back is pinned by the canonical hash. The same
// containment discipline compositional synthesis demands: certify the
// pieces, compose without re-proving the whole.
//
// Mechanisms, in request order:
//
//   - per-backend health probing (/readyz) drives a three-state circuit
//     breaker: closed → open after K consecutive failures → half-open
//     probe → closed on success;
//   - routing prefers the hash's owner; an open breaker deterministically
//     reassigns the prefix range to the next healthy host in ring order
//     (a failover, counted);
//   - bounded, seeded-jittered exponential-backoff retries honour
//     Retry-After and retry only transient faults (connection
//     refused/reset, 429, 502, 503-draining, 504) — terminal refusals
//     (400, 413, 422-quarantine) proxy through untouched;
//   - a hedged second request fires to the failover host when the
//     primary exceeds a latency threshold, first-complete-wins;
//   - the coordinator keeps its own journal, folds backend journals with
//     journal.Merge on boot, re-submits journalled timeout/panic records
//     (which carry the net source) to a healthy host, and serves stale
//     journal reports with an explicit degraded marker when every owner
//     of a prefix is down — never a blind 502 while an answer exists.
//
// See docs/SERVICE.md ("The multi-host coordinator") for the topology
// and the failure-mode table.
package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fcpn/internal/engine"
	"fcpn/internal/journal"
	"fcpn/internal/petri"
	"fcpn/internal/server"
	"fcpn/internal/trace"
)

// Config tunes the coordinator. Only Backends is required.
type Config struct {
	// Backends are the base URLs of the qssd serve hosts work routes
	// across by canonical-hash prefix (index = server.PrefixIndex).
	Backends []string
	// ProbeInterval is the /readyz probe cadence per backend while its
	// breaker is closed (default 250ms). Open breakers probe with
	// exponential backoff from this base.
	ProbeInterval time.Duration
	// BreakerThreshold is K: consecutive failures (requests or probes)
	// before a backend's breaker opens (default 3).
	BreakerThreshold int
	// RetryAttempts bounds how many times one request is tried across
	// hosts before degrading (default 4).
	RetryAttempts int
	// RetryBase/RetryMax bound the seeded-jittered exponential backoff
	// between attempts (defaults 25ms/2s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// RetryBudget is the total wall-clock budget of one request's retry
	// loop (default 1 minute).
	RetryBudget time.Duration
	// HedgeAfter fires a second copy of an analyze request at the
	// failover host when the primary has not answered within it;
	// first-complete-wins. 0 disables hedging.
	HedgeAfter time.Duration
	// Journal is the coordinator's own append-only journal path. On
	// boot, BackendJournals (plus any previous coordinator journal) are
	// folded into it with journal.Merge.
	Journal string
	// BackendJournals are backend journal files (e.g. each host's
	// shard-*.jsonl) folded into the coordinator's view on boot: ok
	// records warm the stale-serving cache, timeout/panic records that
	// carry net source are reissued to a healthy host.
	BackendJournals []string
	// Seed drives the retry/hedge jitter stream (0 = fixed default).
	Seed uint64
	// MaxBodyBytes bounds POST /v1/analyze bodies (≤ 0 → 1 MiB).
	MaxBodyBytes int64
	// Client overrides the backend HTTP client (tests); default has a
	// 2-minute timeout.
	Client *http.Client
}

// Breaker states.
const (
	stClosed int32 = iota
	stOpen
	stHalfOpen
)

func stateName(s int32) string {
	switch s {
	case stOpen:
		return "open"
	case stHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// backend is one routed host plus its breaker and counters.
type backend struct {
	url   string
	state atomic.Int32 // stClosed | stOpen | stHalfOpen
	fails atomic.Int32 // consecutive transient failures

	requests   atomic.Int64
	failures   atomic.Int64
	probes     atomic.Int64
	probeFails atomic.Int64
}

func (b *backend) healthy() bool { return b.state.Load() == stClosed }

// recordFailure counts one transient fault against the breaker; at K
// consecutive the breaker opens and the prefix range fails over.
func (b *backend) recordFailure(k int) {
	b.failures.Add(1)
	if int(b.fails.Add(1)) >= k {
		b.state.Store(stOpen)
	}
}

// recordSuccess closes the breaker from any state: a real request is
// at least as good a probe as /readyz.
func (b *backend) recordSuccess() {
	b.fails.Store(0)
	b.state.Store(stClosed)
}

// Coordinator is the multi-host front door. Create with New, mount
// Handler, Close on the way out.
type Coordinator struct {
	cfg      Config
	hc       *http.Client
	backends []*backend
	bo       *Backoff
	tr       *trace.Tracer
	mux      *http.ServeMux
	start    time.Time

	jw *journal.Writer

	mu      sync.RWMutex
	cache   map[string]json.RawMessage // hash → stale-servable report bytes
	entries int                        // journal entries folded at boot

	draining  atomic.Bool
	probeStop context.CancelFunc
	wg        sync.WaitGroup

	// Counters (see CounterStats for meanings).
	cAnalyze, cLookups, cRetries, cHedges, cHedgeWins atomic.Int64
	cFailovers, cReissues, cDegraded, cUnavailable    atomic.Int64
	cParseErrors                                      atomic.Int64
}

// New builds the coordinator: journals folded and reissue queued,
// breakers closed, probe loops running. Returns an error for an empty
// backend list or journal I/O failures.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("coord: at least one backend URL is required")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 250 * time.Millisecond
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.RetryAttempts <= 0 {
		cfg.RetryAttempts = 4
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = time.Minute
	}
	c := &Coordinator{
		cfg:   cfg,
		hc:    cfg.Client,
		bo:    NewBackoff(cfg.RetryBase, cfg.RetryMax, cfg.Seed),
		tr:    trace.New(),
		start: time.Now(),
		cache: map[string]json.RawMessage{},
	}
	if c.hc == nil {
		c.hc = &http.Client{Timeout: 2 * time.Minute}
	}
	for _, u := range cfg.Backends {
		c.backends = append(c.backends, &backend{url: strings.TrimRight(u, "/")})
	}

	pending, err := c.foldJournals()
	if err != nil {
		return nil, err
	}
	if cfg.Journal != "" {
		if c.jw, err = journal.Open(cfg.Journal); err != nil {
			return nil, err
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", c.handleAnalyze)
	mux.HandleFunc("GET /v1/report/{hash}", c.handleReport)
	mux.HandleFunc("GET /v1/stats", c.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", c.handleReadyz)
	c.mux = mux

	ctx, cancel := context.WithCancel(context.Background())
	c.probeStop = cancel
	for _, b := range c.backends {
		c.wg.Add(1)
		go c.probeLoop(ctx, b)
	}
	if len(pending) > 0 {
		c.wg.Add(1)
		go c.reissueLoop(ctx, pending)
	}
	return c, nil
}

// foldJournals merges the backend journals (and any previous
// coordinator journal) into the coordinator's journal file, loads the
// folded entries into the stale-serving cache, and returns the
// reissueable records: journalled timeouts/panics that carry their net
// source.
func (c *Coordinator) foldJournals() ([]journal.Entry, error) {
	var inputs []string
	for _, p := range c.cfg.BackendJournals {
		if _, err := os.Stat(p); err == nil {
			inputs = append(inputs, p)
		}
	}
	var entries map[string]journal.Entry
	switch {
	case c.cfg.Journal != "" && len(inputs) > 0:
		// Own journal folds last so the coordinator's view wins ties.
		if _, err := os.Stat(c.cfg.Journal); err == nil {
			inputs = append(inputs, c.cfg.Journal)
		}
		if _, _, err := journal.Merge(c.cfg.Journal, inputs); err != nil {
			return nil, fmt.Errorf("coord: folding backend journals: %w", err)
		}
		fallthrough
	case c.cfg.Journal != "":
		if _, err := os.Stat(c.cfg.Journal); err != nil {
			entries = map[string]journal.Entry{}
			break
		}
		got, err := journal.Read(c.cfg.Journal)
		if err != nil {
			return nil, fmt.Errorf("coord: reading journal: %w", err)
		}
		entries = got
	default:
		// No coordinator journal: fold the backend journals in memory.
		entries = map[string]journal.Entry{}
		for _, in := range inputs {
			got, err := journal.Read(in)
			if err != nil {
				return nil, fmt.Errorf("coord: reading %s: %w", in, err)
			}
			for h, ent := range got {
				entries[h] = ent
			}
		}
	}

	var pending []journal.Entry
	for hash, ent := range entries {
		switch ent.Status {
		case string(engine.StatusOK):
			if ent.Report == nil {
				continue
			}
			raw, err := json.Marshal(ent.Report)
			if err != nil {
				return nil, err
			}
			c.cache[hash] = raw
		case string(engine.StatusTimeout), string(engine.StatusPanicked):
			if ent.Net != "" {
				pending = append(pending, ent)
			}
		}
	}
	c.entries = len(entries)
	return pending, nil
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Drain flips readiness to 503 and refuses new analyses; in-flight
// proxying finishes.
func (c *Coordinator) Drain() { c.draining.Store(true) }

// Close drains, stops the probe and reissue loops, and flushes the
// coordinator journal.
func (c *Coordinator) Close() error {
	c.Drain()
	c.probeStop()
	c.wg.Wait()
	return c.jw.Close()
}

// ---- routing ---------------------------------------------------------

// owner is the hash's home backend index: the same prefix function the
// in-process shards use, so one partition map covers the whole fleet.
func (c *Coordinator) owner(hash string) int {
	return server.PrefixIndex(hash, len(c.backends))
}

// pick chooses the backend for a hash: the owner if its breaker is
// closed, else — deterministically — the next closed backend in ring
// order (a failover). With no closed backend it settles for a
// half-open one (the probe may have just revived it); with none at all
// it returns nil and the caller degrades.
func (c *Coordinator) pick(ownerIdx int, exclude *backend) (*backend, bool) {
	n := len(c.backends)
	for _, wantState := range []int32{stClosed, stHalfOpen} {
		for i := 0; i < n; i++ {
			b := c.backends[(ownerIdx+i)%n]
			if b == exclude {
				continue
			}
			if b.state.Load() == wantState {
				return b, b != c.backends[ownerIdx]
			}
		}
	}
	return nil, false
}

// ---- probe loop ------------------------------------------------------

// probeLoop drives one backend's breaker: steady /readyz probes while
// closed; once open, exponential-backoff cooldowns, then a half-open
// probe that either closes the breaker or re-opens it with a longer
// cooldown. The cadence is context-aware backoff all the way down —
// the same primitive the qssd client's WaitReady uses.
func (c *Coordinator) probeLoop(ctx context.Context, b *backend) {
	defer c.wg.Done()
	bo := NewBackoff(c.cfg.ProbeInterval, 16*c.cfg.ProbeInterval, c.cfg.Seed^uint64(len(b.url)))
	openStreak := 0
	for {
		var wait time.Duration
		if b.state.Load() == stOpen {
			wait = bo.Delay(openStreak) // cooldown grows while the host stays down
		} else {
			wait = bo.Delay(0) // steady jittered cadence while closed
		}
		if err := SleepCtx(ctx, wait); err != nil {
			return
		}
		if b.state.Load() == stOpen {
			b.state.Store(stHalfOpen) // announce the trial probe
		}
		b.probes.Add(1)
		ok, _ := ProbeReady(ctx, c.hc, b.url)
		if ok {
			b.recordSuccess()
			openStreak = 0
			continue
		}
		b.probeFails.Add(1)
		if ctx.Err() != nil {
			return
		}
		if b.state.Load() == stHalfOpen {
			b.state.Store(stOpen) // trial failed: back to open, longer cooldown
			openStreak++
		} else {
			b.recordFailure(c.cfg.BreakerThreshold)
		}
	}
}

// ---- request path ----------------------------------------------------

// AnalyzeResponse is the coordinator's envelope: the backend's envelope
// plus where the answer came from and how it got there.
type AnalyzeResponse struct {
	server.AnalyzeResponse
	// Backend is the base URL that produced the answer.
	Backend string `json:"backend,omitempty"`
	// Failover marks an answer produced by a non-owner host.
	Failover bool `json:"failover,omitempty"`
	// Hedged marks an answer won by the hedged second request.
	Hedged bool `json:"hedged,omitempty"`
	// Degraded marks a stale answer served from the merged journal
	// cache because every owner of the prefix is down.
	Degraded bool `json:"degraded,omitempty"`
	// Attempts is how many backend exchanges this request consumed.
	Attempts int `json:"attempts,omitempty"`
}

// exchange is one backend HTTP exchange's outcome.
type exchange struct {
	b          *backend
	code       int
	env        *server.AnalyzeResponse
	retryAfter time.Duration
	err        error // transport or torn-body error
}

// send performs one exchange with a backend and classifies it into the
// breaker. A torn or non-JSON body is a transient fault: the backend
// (or the path to it) is garbling, so the breaker hears about it.
func (c *Coordinator) send(ctx context.Context, b *backend, method, path string, body []byte) exchange {
	b.requests.Add(1)
	var rd *bytes.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.url+path, rd)
	if err != nil {
		return exchange{b: b, err: err}
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := c.hc.Do(req)
	if err != nil {
		if Transient(err) {
			b.recordFailure(c.cfg.BreakerThreshold)
		}
		return exchange{b: b, err: err}
	}
	defer resp.Body.Close()
	raw, err := readBody(resp)
	if err != nil {
		b.recordFailure(c.cfg.BreakerThreshold)
		return exchange{b: b, err: fmt.Errorf("torn response from %s: %w", b.url, err)}
	}
	env := new(server.AnalyzeResponse)
	if err := json.Unmarshal(raw, env); err != nil {
		// A non-JSON body on a 5xx is an intermediary speaking (e.g. the
		// chaos proxy's 502); classify by status. On a 2xx it is garbling.
		if ClassifyStatus(resp.StatusCode) == ClassTransient {
			b.recordFailure(c.cfg.BreakerThreshold)
			return exchange{b: b, code: resp.StatusCode, retryAfter: RetryAfter(resp),
				err: fmt.Errorf("%s from %s: %s", resp.Status, b.url, firstLine(raw))}
		}
		b.recordFailure(c.cfg.BreakerThreshold)
		return exchange{b: b, err: fmt.Errorf("garbled %s body from %s", resp.Status, b.url)}
	}
	switch ClassifyStatus(resp.StatusCode) {
	case ClassTransient:
		b.recordFailure(c.cfg.BreakerThreshold)
	default:
		b.recordSuccess()
	}
	return exchange{b: b, code: resp.StatusCode, env: env, retryAfter: RetryAfter(resp)}
}

// readBody reads a response body, converting short reads against the
// declared Content-Length (the torn-body fault) into errors.
func readBody(resp *http.Response) ([]byte, error) {
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return raw, nil
}

func firstLine(b []byte) string {
	s := strings.TrimSpace(string(b))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 120 {
		s = s[:120]
	}
	return s
}

// transient reports whether the exchange should be retried.
func (ex exchange) transient() bool {
	if ex.err != nil {
		return Transient(ex.err)
	}
	return ClassifyStatus(ex.code) == ClassTransient
}

// sendHedged races the primary against a hedged copy on the failover
// host once the primary exceeds the latency threshold.
// First-complete-wins among non-transient outcomes; the loser is
// cancelled.
func (c *Coordinator) sendHedged(ctx context.Context, primary *backend, ownerIdx int, method, path string, body []byte) (exchange, bool) {
	if c.cfg.HedgeAfter <= 0 {
		return c.send(ctx, primary, method, path, body), false
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan exchange, 2)
	go func() { results <- c.send(hctx, primary, method, path, body) }()

	timer := time.NewTimer(c.cfg.HedgeAfter)
	defer timer.Stop()
	select {
	case ex := <-results:
		return ex, false
	case <-timer.C:
	}
	alt, _ := c.pick(ownerIdx, primary)
	if alt == nil {
		return <-results, false
	}
	c.cHedges.Add(1)
	sp := c.tr.StartDetail("coord/hedge")
	go func() { results <- c.send(hctx, alt, method, path, body) }()
	first := <-results
	if !first.transient() {
		sp.End()
		// Let the loser's goroutine finish against the cancelled context;
		// the buffered channel keeps it leak-free.
		return first, first.b == alt
	}
	second := <-results
	sp.End()
	if !second.transient() {
		return second, second.b == alt
	}
	return first, false
}

// analyzeUpstream drives one analyze request through routing, hedging,
// bounded retries and failover. It returns the winning exchange plus
// routing metadata; a nil exchange env with err set means the fleet is
// exhausted and the caller should degrade.
func (c *Coordinator) analyzeUpstream(ctx context.Context, hash string, body []byte) (ex exchange, failover, hedged bool, attempts int) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.RetryBudget)
	defer cancel()
	ownerIdx := c.owner(hash)
	var last exchange
	for attempt := 0; attempt < c.cfg.RetryAttempts; attempt++ {
		target, fo := c.pick(ownerIdx, nil)
		if target == nil {
			break // no live backend: degrade now rather than burn the budget
		}
		if fo {
			c.cFailovers.Add(1)
			c.tr.Add("coord/failover", 1)
			failover = true
		}
		ex, hedgeWon := c.sendHedged(ctx, target, ownerIdx, http.MethodPost, "/v1/analyze", body)
		attempts++
		if hedgeWon {
			c.cHedgeWins.Add(1)
			hedged = true
			failover = true
		}
		if !ex.transient() {
			return ex, failover, hedged, attempts
		}
		last = ex
		c.cRetries.Add(1)
		sp := c.tr.StartDetail("coord/retry")
		var sleep time.Duration
		if ex.retryAfter > 0 {
			sleep = c.bo.Honour(ex.retryAfter)
		} else {
			sleep = c.bo.Delay(attempt)
		}
		err := SleepCtx(ctx, sleep)
		sp.End()
		if err != nil {
			break // budget exhausted mid-backoff
		}
	}
	if last.b == nil {
		last.err = errors.New("no live backend")
	}
	return last, failover, hedged, attempts
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// canonicalHash mirrors the server's recover-wrapped hashing.
func canonicalHash(n *petri.Net) (hash string, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("canonicalisation panicked: %v", r)
		}
	}()
	return n.CanonicalHash(), nil
}

func (c *Coordinator) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	c.cAnalyze.Add(1)
	if c.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, AnalyzeResponse{
			AnalyzeResponse: server.AnalyzeResponse{Status: "error", Error: "coordinator is draining"},
		})
		return
	}
	maxBody := c.cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 1 << 20
	}
	if r.ContentLength > maxBody {
		c.cParseErrors.Add(1)
		writeJSON(w, http.StatusRequestEntityTooLarge, AnalyzeResponse{
			AnalyzeResponse: server.AnalyzeResponse{Status: "error",
				Error: fmt.Sprintf("body exceeds %d byte limit", maxBody)},
		})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		c.cParseErrors.Add(1)
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, code, AnalyzeResponse{
			AnalyzeResponse: server.AnalyzeResponse{Status: "error", Error: err.Error()},
		})
		return
	}
	// Terminal-by-construction requests are refused here: no backend
	// would answer differently, so none should pay for the parse.
	n, err := petri.Parse(bytes.NewReader(body))
	if err != nil {
		c.cParseErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, AnalyzeResponse{
			AnalyzeResponse: server.AnalyzeResponse{Status: "error", Error: "parse: " + err.Error()},
		})
		return
	}
	hash, err := canonicalHash(n)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, AnalyzeResponse{
			AnalyzeResponse: server.AnalyzeResponse{Status: string(engine.StatusPanicked), Error: err.Error()},
		})
		return
	}

	sp := c.tr.Start("coord/route")
	ex, failover, hedged, attempts := c.analyzeUpstream(r.Context(), hash, body)
	sp.End()

	if ex.env == nil { // fleet exhausted: degrade or refuse
		c.serveDegraded(w, hash, ex.err)
		return
	}
	resp := AnalyzeResponse{
		AnalyzeResponse: *ex.env,
		Backend:         ex.b.url,
		Failover:        failover,
		Hedged:          hedged,
		Attempts:        attempts,
	}
	c.journalOutcome(hash, n.Name(), ex.env, string(body))
	if ex.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int(ex.retryAfter/time.Second)))
	}
	writeJSON(w, ex.code, resp)
}

// journalOutcome records an analyze outcome in the coordinator journal
// and the stale-serving cache. Reissueable outcomes keep the net
// source, exactly like the backends' own journals.
func (c *Coordinator) journalOutcome(hash, name string, env *server.AnalyzeResponse, src string) {
	if env.Status == string(engine.StatusOK) && len(env.Report) > 0 {
		raw := append(json.RawMessage(nil), env.Report...)
		c.mu.Lock()
		c.cache[hash] = raw
		c.mu.Unlock()
	}
	if c.jw == nil {
		return
	}
	ent := journal.Entry{
		Hash:   hash,
		Source: "coord:" + name,
		Status: env.Status,
		Error:  env.Error,
	}
	switch env.Status {
	case string(engine.StatusOK):
		rep := new(engine.NetReport)
		if err := json.Unmarshal(env.Report, rep); err == nil {
			ent.Report = rep
		}
	case string(engine.StatusTimeout), string(engine.StatusPanicked):
		ent.Net = src
	default:
		return // refusals (parse, quarantine, window) are not ours to journal
	}
	c.jw.Record(ent)
}

// serveDegraded answers from the merged journal cache when no backend
// can: a stale, explicitly marked report beats a blind 502. With no
// cached answer the 502 is honest.
func (c *Coordinator) serveDegraded(w http.ResponseWriter, hash string, cause error) {
	c.mu.RLock()
	raw, ok := c.cache[hash]
	c.mu.RUnlock()
	if ok {
		c.cDegraded.Add(1)
		writeJSON(w, http.StatusOK, AnalyzeResponse{
			AnalyzeResponse: server.AnalyzeResponse{
				Hash: hash, Cache: "hit", Status: string(engine.StatusOK), Report: raw,
			},
			Degraded: true,
		})
		return
	}
	c.cUnavailable.Add(1)
	msg := "no live backend"
	if cause != nil {
		msg = cause.Error()
	}
	writeJSON(w, http.StatusBadGateway, AnalyzeResponse{
		AnalyzeResponse: server.AnalyzeResponse{Hash: hash, Status: "error",
			Error: "all backends failed: " + msg},
	})
}

func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	c.cLookups.Add(1)
	hash := r.PathValue("hash")
	ownerIdx := c.owner(hash)
	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.RetryBudget)
	defer cancel()
	var last exchange
	for attempt := 0; attempt < c.cfg.RetryAttempts; attempt++ {
		target, fo := c.pick(ownerIdx, nil)
		if target == nil {
			break
		}
		if fo {
			c.cFailovers.Add(1)
			c.tr.Add("coord/failover", 1)
		}
		ex := c.send(ctx, target, http.MethodGet, "/v1/report/"+hash, nil)
		if !ex.transient() {
			if ex.code == http.StatusNotFound {
				// The owner not knowing the hash is authoritative only if
				// the journal cache agrees.
				break
			}
			writeJSON(w, ex.code, AnalyzeResponse{AnalyzeResponse: *ex.env, Backend: ex.b.url, Failover: fo})
			return
		}
		last = ex
		c.cRetries.Add(1)
		if err := SleepCtx(ctx, c.bo.Delay(attempt)); err != nil {
			break
		}
	}
	c.mu.RLock()
	raw, ok := c.cache[hash]
	c.mu.RUnlock()
	if ok {
		c.cDegraded.Add(1)
		writeJSON(w, http.StatusOK, AnalyzeResponse{
			AnalyzeResponse: server.AnalyzeResponse{
				Hash: hash, Cache: "hit", Status: string(engine.StatusOK), Report: raw,
			},
			Degraded: last.b != nil, // stale only when backends exist but failed
		})
		return
	}
	writeJSON(w, http.StatusNotFound, AnalyzeResponse{
		AnalyzeResponse: server.AnalyzeResponse{Hash: hash, Status: "error", Error: "unknown report hash"},
	})
}

func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if c.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	for _, b := range c.backends {
		if b.state.Load() != stOpen {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
			return
		}
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no live backend"})
}

// ---- reissue ---------------------------------------------------------

// reissueLoop re-submits journalled timeout/panic records to a healthy
// host. Each record carries its net source (journal.Entry.Net), so the
// work needs no corpus access; a successful reissue overwrites the
// journal record later-wins. Runs once at boot, retrying each record
// through the same bounded backoff as live traffic.
func (c *Coordinator) reissueLoop(ctx context.Context, pending []journal.Entry) {
	defer c.wg.Done()
	for _, ent := range pending {
		if ctx.Err() != nil {
			return
		}
		sp := c.tr.StartDetail("coord/reissue")
		c.reissueOne(ctx, ent)
		sp.End()
	}
}

func (c *Coordinator) reissueOne(ctx context.Context, ent journal.Entry) {
	n, err := petri.ParseString(ent.Net)
	if err != nil {
		return // a garbled journal line is not worth a request
	}
	ex, _, _, _ := c.analyzeUpstream(ctx, ent.Hash, []byte(ent.Net))
	if ex.env == nil {
		return // fleet still down; the record stays pending in the journal
	}
	if ex.env.Status == string(engine.StatusOK) {
		c.cReissues.Add(1)
		c.journalOutcome(ent.Hash, n.Name(), ex.env, ent.Net)
	}
}

// ---- stats -----------------------------------------------------------

// BackendStats is one backend's slice of GET /v1/stats.
type BackendStats struct {
	URL string `json:"url"`
	// State is the breaker state: "closed" (routable), "open" (failed
	// over) or "half-open" (probe in flight).
	State            string `json:"state"`
	ConsecutiveFails int    `json:"consecutive_fails"`
	Requests         int64  `json:"requests"`
	Failures         int64  `json:"failures"`
	Probes           int64  `json:"probes"`
	ProbeFailures    int64  `json:"probe_failures"`
}

// CounterStats are the coordinator's request-path tallies.
type CounterStats struct {
	Analyze       int64 `json:"analyze"`
	ReportLookups int64 `json:"report_lookups"`
	ParseErrors   int64 `json:"parse_errors"`
	// Retries counts backoff-and-go-again decisions; Failovers counts
	// requests routed off their owner; Hedges counts second requests
	// fired, HedgeWins how many answered first.
	Retries   int64 `json:"retries"`
	Failovers int64 `json:"failovers"`
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedge_wins"`
	// Reissues counts journalled timeout/panic records successfully
	// re-analysed on boot.
	Reissues int64 `json:"reissues"`
	// DegradedServes counts stale journal-cache answers; Unavailable
	// counts honest 502s (no backend, no cached answer).
	DegradedServes int64 `json:"degraded_serves"`
	Unavailable    int64 `json:"unavailable"`
}

// StatsReport is the GET /v1/stats document.
type StatsReport struct {
	Backends       []BackendStats `json:"backends"`
	UptimeMS       float64        `json:"uptime_ms"`
	Requests       CounterStats   `json:"requests"`
	JournalEntries int            `json:"journal_entries"`
	CachedReports  int            `json:"cached_reports"`
	Trace          *trace.Report  `json:"trace,omitempty"`
}

// StatsReport assembles the stats document (also GET /v1/stats).
func (c *Coordinator) StatsReport() StatsReport {
	rep := StatsReport{
		UptimeMS: float64(time.Since(c.start).Nanoseconds()) / 1e6,
		Requests: CounterStats{
			Analyze:        c.cAnalyze.Load(),
			ReportLookups:  c.cLookups.Load(),
			ParseErrors:    c.cParseErrors.Load(),
			Retries:        c.cRetries.Load(),
			Failovers:      c.cFailovers.Load(),
			Hedges:         c.cHedges.Load(),
			HedgeWins:      c.cHedgeWins.Load(),
			Reissues:       c.cReissues.Load(),
			DegradedServes: c.cDegraded.Load(),
			Unavailable:    c.cUnavailable.Load(),
		},
		JournalEntries: c.entries,
		Trace:          c.tr.Report(),
	}
	c.mu.RLock()
	rep.CachedReports = len(c.cache)
	c.mu.RUnlock()
	for _, b := range c.backends {
		rep.Backends = append(rep.Backends, BackendStats{
			URL:              b.url,
			State:            stateName(b.state.Load()),
			ConsecutiveFails: int(b.fails.Load()),
			Requests:         b.requests.Load(),
			Failures:         b.failures.Load(),
			Probes:           b.probes.Load(),
			ProbeFailures:    b.probeFails.Load(),
		})
	}
	return rep
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.StatsReport())
}

package coord

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fcpn/internal/engine"
	"fcpn/internal/figures"
	"fcpn/internal/journal"
	"fcpn/internal/netgen"
	"fcpn/internal/petri"
	"fcpn/internal/server"
)

// fastConfig tunes every knob for test speed: tight probes, a
// two-failure breaker, millisecond backoff.
func fastConfig(backends ...string) Config {
	return Config{
		Backends:         backends,
		ProbeInterval:    20 * time.Millisecond,
		BreakerThreshold: 2,
		RetryAttempts:    4,
		RetryBase:        2 * time.Millisecond,
		RetryMax:         20 * time.Millisecond,
		RetryBudget:      10 * time.Second,
		Seed:             1,
	}
}

// bootBackend starts a real analysis service behind httptest.
func bootBackend(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	if cfg.Engine.Workers == 0 {
		cfg.Engine.Workers = 2
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// bootCoord starts a coordinator behind httptest.
func bootCoord(t *testing.T, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		ts.Close()
		c.Close()
	})
	return c, ts
}

// postCoord submits .pn source through the coordinator.
func postCoord(t *testing.T, base, src string) (int, AnalyzeResponse) {
	t.Helper()
	resp, err := http.Post(base+"/v1/analyze", "text/plain", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env AnalyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("bad envelope: %v", err)
	}
	return resp.StatusCode, env
}

// deadURL returns a URL nothing listens on: connections are refused.
func deadURL(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	u := "http://" + ln.Addr().String()
	ln.Close()
	return u
}

// testCorpus returns a handful of distinct nets spanning both hash
// prefixes of a two-backend ring.
func testCorpus(t *testing.T, n int) []string {
	t.Helper()
	srcs := []string{
		petri.Format(figures.Figure2()),
		petri.Format(figures.Figure5()),
		petri.Format(figures.Figure7()),
	}
	for seed := uint64(0); len(srcs) < n; seed++ {
		srcs = append(srcs, petri.Format(netgen.RandomSchedulablePipeline(seed, netgen.DefaultConfig())))
	}
	return srcs[:n]
}

// waitStats polls the coordinator's stats until pred holds or the
// deadline passes.
func waitStats(t *testing.T, c *Coordinator, what string, pred func(StatsReport) bool) StatsReport {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		rep := c.StatsReport()
		if pred(rep) {
			return rep
		}
		if time.Now().After(deadline) {
			b, _ := json.Marshal(rep)
			t.Fatalf("waiting for %s: %s", what, b)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCoordRoutesAndMatchesDirect pins the baseline contract: an answer
// through the coordinator is byte-identical to the same net posted
// straight at a backend, and the envelope says which backend produced
// it.
func TestCoordRoutesAndMatchesDirect(t *testing.T) {
	_, b0 := bootBackend(t, server.Config{})
	_, b1 := bootBackend(t, server.Config{})
	_, front := bootCoord(t, fastConfig(b0.URL, b1.URL))

	for _, src := range testCorpus(t, 6) {
		code, env := postCoord(t, front.URL, src)
		if code != http.StatusOK || env.Status != "ok" {
			t.Fatalf("coordinated analyze: code=%d env=%+v", code, env)
		}
		if env.Backend != b0.URL && env.Backend != b1.URL {
			t.Fatalf("envelope names no backend: %+v", env)
		}
		if env.Attempts < 1 {
			t.Fatalf("attempts not counted: %+v", env)
		}

		// The same net straight at the answering backend: same bytes.
		resp, err := http.Post(env.Backend+"/v1/analyze", "text/plain", strings.NewReader(src))
		if err != nil {
			t.Fatal(err)
		}
		var direct server.AnalyzeResponse
		if err := json.NewDecoder(resp.Body).Decode(&direct); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !bytes.Equal(env.Report, direct.Report) {
			t.Fatalf("coordinated report diverged from direct report for %s", env.Hash)
		}
		// Routing is the shared prefix function.
		if want := server.PrefixIndex(env.Hash, 2); !env.Failover {
			backends := []string{b0.URL, b1.URL}
			if env.Backend != backends[want] {
				t.Fatalf("hash %s routed to %s, owner is %s", env.Hash, env.Backend, backends[want])
			}
		}
	}
}

// TestCoordFailoverDeadBackend kills one of two backends and asserts
// every request still answers 200 via the survivor, the dead host's
// breaker opens, and the failover counter moves.
func TestCoordFailoverDeadBackend(t *testing.T) {
	_, b0 := bootBackend(t, server.Config{})
	_, b1 := bootBackend(t, server.Config{})
	c, front := bootCoord(t, fastConfig(b0.URL, b1.URL))

	b1.Close() // SIGKILL-equivalent: connections refused from here on

	for _, src := range testCorpus(t, 8) {
		code, env := postCoord(t, front.URL, src)
		if code != http.StatusOK || env.Status != "ok" {
			t.Fatalf("analyze with a dead backend: code=%d env=%+v", code, env)
		}
		if env.Backend != b0.URL {
			t.Fatalf("answer credited to the dead backend: %+v", env)
		}
	}
	rep := waitStats(t, c, "open breaker + failovers", func(r StatsReport) bool {
		return r.Backends[1].State == "open" && r.Requests.Failovers > 0
	})
	if rep.Requests.Unavailable != 0 {
		t.Fatalf("requests were refused despite a live backend: %+v", rep.Requests)
	}
}

// TestCoordBreakerLifecycle drives one backend through
// closed → open → half-open → closed using a handler that can be
// switched between healthy and failing.
func TestCoordBreakerLifecycle(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"status":"error","error":"draining"}`)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"status":"ok"}`)
	}))
	defer ts.Close()

	c, err := New(fastConfig(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	waitStats(t, c, "initial closed breaker", func(r StatsReport) bool {
		return r.Backends[0].State == "closed"
	})
	healthy.Store(false)
	waitStats(t, c, "breaker to open", func(r StatsReport) bool {
		return r.Backends[0].State == "open" || r.Backends[0].State == "half-open"
	})
	healthy.Store(true)
	waitStats(t, c, "half-open probe to close the breaker", func(r StatsReport) bool {
		return r.Backends[0].State == "closed"
	})
}

// TestCoordDegradedStaleServing: once a report has been answered live,
// losing every backend downgrades the same request to a stale cache
// answer with an explicit degraded marker — and an unknown net to an
// honest 502.
func TestCoordDegradedStaleServing(t *testing.T) {
	_, b0 := bootBackend(t, server.Config{})
	c, front := bootCoord(t, fastConfig(b0.URL))

	src := petri.Format(figures.Figure5())
	code, live := postCoord(t, front.URL, src)
	if code != http.StatusOK || live.Status != "ok" {
		t.Fatalf("live analyze: code=%d env=%+v", code, live)
	}

	b0.Close()
	// The request path itself opens the breaker; no need to wait for
	// probes.
	code, stale := postCoord(t, front.URL, src)
	if code != http.StatusOK {
		t.Fatalf("stale serve refused: code=%d env=%+v", code, stale)
	}
	if !stale.Degraded {
		t.Fatalf("stale answer not marked degraded: %+v", stale)
	}
	if !bytes.Equal(stale.Report, live.Report) {
		t.Fatal("degraded answer diverged from the live answer")
	}

	// A net the journal cache has never seen has no stale answer.
	other := petri.Format(figures.Figure2())
	code, miss := postCoord(t, front.URL, other)
	if code != http.StatusBadGateway {
		t.Fatalf("uncached net with no backend: code=%d env=%+v", code, miss)
	}
	rep := c.StatsReport()
	if rep.Requests.DegradedServes < 1 || rep.Requests.Unavailable < 1 {
		t.Fatalf("degraded/unavailable not counted: %+v", rep.Requests)
	}
}

// TestCoordBootFoldsBackendJournals: a backend's journal is folded into
// the coordinator's own on boot, so a report computed in a previous
// life is servable — explicitly degraded — with zero live backends.
func TestCoordBootFoldsBackendJournals(t *testing.T) {
	dir := t.TempDir()
	bs, b0 := bootBackend(t, server.Config{JournalDir: dir, Engine: engine.Config{Workers: 1}})
	src := petri.Format(figures.Figure5())
	resp, err := http.Post(b0.URL+"/v1/analyze", "text/plain", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var direct server.AnalyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&direct); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	b0.Close()
	bs.Close() // flush the shard journal

	cfg := fastConfig(deadURL(t))
	cfg.Journal = filepath.Join(dir, "coord.jsonl")
	cfg.BackendJournals = []string{filepath.Join(dir, "shard-0.jsonl")}
	c, front := bootCoord(t, cfg)

	if c.StatsReport().CachedReports != 1 {
		t.Fatalf("folded cache: %+v", c.StatsReport())
	}
	code, env := postCoord(t, front.URL, src)
	if code != http.StatusOK || !env.Degraded {
		t.Fatalf("journal-backed degraded serve: code=%d env=%+v", code, env)
	}
	if !bytes.Equal(env.Report, direct.Report) {
		t.Fatal("journal-backed answer diverged from the original report")
	}
	// GET /v1/report falls back to the folded cache too.
	r2, err := http.Get(front.URL + "/v1/report/" + direct.Hash)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("report lookup from folded journal: %d %s", r2.StatusCode, body)
	}
	// The fold is durable: the merged coordinator journal holds the entry.
	ents, err := journal.Read(cfg.Journal)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ents[direct.Hash]; !ok {
		t.Fatalf("coordinator journal missing folded hash %s", direct.Hash)
	}
}

// TestCoordBootReissue: a journalled timeout that carries its net
// source is re-submitted to a healthy backend on boot, and the answer
// becomes fetchable.
func TestCoordBootReissue(t *testing.T) {
	src := petri.Format(figures.Figure5())
	n, err := petri.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	hash := n.CanonicalHash()

	dir := t.TempDir()
	bj := filepath.Join(dir, "backend.jsonl")
	line, _ := json.Marshal(journal.Entry{
		Hash: hash, Source: "soak:fig5", Status: string(engine.StatusTimeout),
		Error: "analysis timed out", Net: src,
	})
	if err := os.WriteFile(bj, append(line, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	_, b0 := bootBackend(t, server.Config{})
	cfg := fastConfig(b0.URL)
	cfg.Journal = filepath.Join(dir, "coord.jsonl")
	cfg.BackendJournals = []string{bj}
	c, front := bootCoord(t, cfg)

	waitStats(t, c, "boot reissue", func(r StatsReport) bool {
		return r.Requests.Reissues >= 1
	})
	resp, err := http.Get(front.URL + "/v1/report/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reissued report not fetchable: %d %s", resp.StatusCode, body)
	}
	// The reissue overwrote the timeout record later-wins.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := journal.Read(cfg.Journal)
	if err != nil {
		t.Fatal(err)
	}
	if got := ents[hash].Status; got != string(engine.StatusOK) {
		t.Fatalf("journal after reissue: status %q, want ok", got)
	}
}

// TestCoordHedgedRequest: a slow owner past the hedge threshold loses
// to the hedged copy on the failover host.
func TestCoordHedgedRequest(t *testing.T) {
	envelope := `{"hash":"h","status":"ok","report":{"name":"stub"}}`
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			fmt.Fprint(w, `{"status":"ready"}`)
			return
		}
		time.Sleep(300 * time.Millisecond)
		fmt.Fprint(w, envelope)
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, envelope)
	}))
	defer fast.Close()

	// Arrange the ring so the slow host owns the test hash.
	src := petri.Format(figures.Figure5())
	n, _ := petri.ParseString(src)
	owner := server.PrefixIndex(n.CanonicalHash(), 2)
	backends := make([]string, 2)
	backends[owner] = slow.URL
	backends[1-owner] = fast.URL

	cfg := fastConfig(backends...)
	cfg.HedgeAfter = 25 * time.Millisecond
	c, front := bootCoord(t, cfg)

	t0 := time.Now()
	code, env := postCoord(t, front.URL, src)
	if code != http.StatusOK || env.Status != "ok" {
		t.Fatalf("hedged analyze: code=%d env=%+v", code, env)
	}
	if !env.Hedged || env.Backend != fast.URL {
		t.Fatalf("hedge did not win: %+v", env)
	}
	if d := time.Since(t0); d >= 300*time.Millisecond {
		t.Fatalf("hedged request waited out the slow host: %v", d)
	}
	rep := c.StatsReport()
	if rep.Requests.Hedges < 1 || rep.Requests.HedgeWins < 1 {
		t.Fatalf("hedge counters: %+v", rep.Requests)
	}
}

// TestCoordTerminalFaultsLocal: requests no backend could answer
// differently are refused at the coordinator without burning a backend
// exchange.
func TestCoordTerminalFaultsLocal(t *testing.T) {
	_, b0 := bootBackend(t, server.Config{})
	c, front := bootCoord(t, fastConfig(b0.URL))

	code, _ := postCoord(t, front.URL, "this is not a net")
	if code != http.StatusBadRequest {
		t.Fatalf("parse error: code=%d, want 400", code)
	}
	big := Config{Backends: []string{b0.URL}, MaxBodyBytes: 64}
	_, smallFront := bootCoord(t, big)
	code, env := postCoord(t, smallFront.URL, strings.Repeat("x", 1024))
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body: code=%d env=%+v", code, env)
	}
	if c.StatsReport().Requests.ParseErrors < 1 {
		t.Fatalf("parse errors not counted: %+v", c.StatsReport().Requests)
	}
}

// TestCoordDrainRefuses: a draining coordinator 503s new analyses and
// flips /readyz, like the backends it fronts.
func TestCoordDrainRefuses(t *testing.T) {
	_, b0 := bootBackend(t, server.Config{})
	c, front := bootCoord(t, fastConfig(b0.URL))

	c.Drain()
	code, env := postCoord(t, front.URL, petri.Format(figures.Figure2()))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining analyze: code=%d env=%+v", code, env)
	}
	resp, err := http.Get(front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz: %d", resp.StatusCode)
	}
}

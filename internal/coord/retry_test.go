package coord

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestClassifyStatus(t *testing.T) {
	transient := []int{429, 502, 503, 504, 599}
	for _, code := range transient {
		if ClassifyStatus(code) != ClassTransient {
			t.Errorf("ClassifyStatus(%d) != transient", code)
		}
	}
	terminal := []int{400, 404, 413, 422, 500}
	for _, code := range terminal {
		if ClassifyStatus(code) != ClassTerminal {
			t.Errorf("ClassifyStatus(%d) != terminal", code)
		}
	}
	for _, code := range []int{200, 201, 204} {
		if ClassifyStatus(code) != ClassOK {
			t.Errorf("ClassifyStatus(%d) != ok", code)
		}
	}
}

func TestTransientErrors(t *testing.T) {
	if Transient(nil) {
		t.Error("nil error is not transient")
	}
	if Transient(context.Canceled) || Transient(context.DeadlineExceeded) {
		t.Error("caller cancellation is not transient")
	}
	if !Transient(errors.New("connection refused")) {
		t.Error("transport errors are transient")
	}
	if !Transient(&net.OpError{Op: "read", Err: errors.New("connection reset by peer")}) {
		t.Error("reset is transient")
	}
}

// TestBackoffDelayGrowthAndJitter pins the delay envelope: attempt k
// draws from [d/2, d) with d = min(base<<k, max), so delays grow, stay
// bounded, and never collapse to zero (no thundering herd of immediate
// retries).
func TestBackoffDelayGrowthAndJitter(t *testing.T) {
	bo := NewBackoff(40*time.Millisecond, 200*time.Millisecond, 42)
	for attempt := 0; attempt < 6; attempt++ {
		want := 40 * time.Millisecond << attempt
		if want > 200*time.Millisecond {
			want = 200 * time.Millisecond
		}
		for i := 0; i < 50; i++ {
			d := bo.Delay(attempt)
			if d < want/2 || d >= want {
				t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d, want/2, want)
			}
		}
	}
}

// TestBackoffSeededReproducible pins that the jitter stream is a pure
// function of the seed.
func TestBackoffSeededReproducible(t *testing.T) {
	a := NewBackoff(10*time.Millisecond, time.Second, 7)
	b := NewBackoff(10*time.Millisecond, time.Second, 7)
	for i := 0; i < 20; i++ {
		if da, db := a.Delay(i%4), b.Delay(i%4); da != db {
			t.Fatalf("draw %d: %v vs %v", i, da, db)
		}
	}
}

func TestBackoffHonourAddsJitterNotLess(t *testing.T) {
	bo := NewBackoff(10*time.Millisecond, time.Second, 3)
	hint := 80 * time.Millisecond
	for i := 0; i < 50; i++ {
		d := bo.Honour(hint)
		if d < hint || d >= hint+hint/2 {
			t.Fatalf("Honour(%v) = %v outside [hint, 1.5*hint)", hint, d)
		}
	}
}

func TestSleepCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	if err := SleepCtx(ctx, 5*time.Second); err == nil {
		t.Fatal("cancelled sleep must report the context error")
	}
	if time.Since(t0) > time.Second {
		t.Fatal("cancelled sleep did not wake promptly")
	}
}

// TestWaitReadyBacksOffAndHonoursContext replaces the old fixed-50ms
// poll: a service that comes up late is found, probe counts stay small
// (backoff, not spin), and cancellation cuts the wait short.
func TestWaitReadyBacksOffAndHonoursContext(t *testing.T) {
	var calls atomic.Int64
	var ready atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if ready.Load() {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	hc := ts.Client()

	go func() {
		time.Sleep(60 * time.Millisecond)
		ready.Store(true)
	}()
	if err := WaitReady(context.Background(), hc, ts.URL, 5*time.Second); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	if n := calls.Load(); n > 12 {
		t.Fatalf("%d probes in ~60ms: not backing off", n)
	}

	// Cancellation: a dead service with a cancelled context returns
	// promptly with the last probe error wrapped.
	ready.Store(false)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	err := WaitReady(ctx, hc, ts.URL, time.Minute)
	if err == nil || time.Since(t0) > 2*time.Second {
		t.Fatalf("cancelled WaitReady: err=%v after %v", err, time.Since(t0))
	}
}

func TestWaitReadyBudgetExpires(t *testing.T) {
	// A port nothing listens on: every probe fails with refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close()
	t0 := time.Now()
	err = WaitReady(context.Background(), http.DefaultClient, dead, 100*time.Millisecond)
	if err == nil {
		t.Fatal("dead address must fail")
	}
	if d := time.Since(t0); d > 3*time.Second {
		t.Fatalf("budget not honoured: %v", d)
	}
}

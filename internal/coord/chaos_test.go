package coord

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fcpn/internal/fault"
	"fcpn/internal/figures"
	"fcpn/internal/netgen"
	"fcpn/internal/petri"
	"fcpn/internal/server"
)

// TestCoordChaosSoak is the acceptance soak: three backends behind
// seeded HTTP fault proxies, a coordinator in front, and a concurrent
// batch during which one backend is killed outright and another starts
// garbling (5xx substitution, torn bodies, connection resets)
// mid-batch. The batch must lose zero jobs, fail over at least once,
// and every report must be byte-identical to a fault-free reference
// run — the content-addressed determinism argument, exercised end to
// end through real faults.
func TestCoordChaosSoak(t *testing.T) {
	// Corpus: the paper figures plus generated pipelines, enough jobs to
	// straddle the mid-batch fault injection.
	srcs := []string{
		petri.Format(figures.Figure2()),
		petri.Format(figures.Figure5()),
		petri.Format(figures.Figure7()),
	}
	for seed := uint64(10); len(srcs) < 24; seed++ {
		srcs = append(srcs, petri.Format(netgen.RandomSchedulablePipeline(seed, netgen.DefaultConfig())))
	}

	// Fault-free reference: one plain backend, every net posted once.
	reference := make([][]byte, len(srcs))
	{
		_, ref := bootBackend(t, server.Config{})
		for i, src := range srcs {
			resp, err := http.Post(ref.URL+"/v1/analyze", "text/plain", strings.NewReader(src))
			if err != nil {
				t.Fatal(err)
			}
			var env server.AnalyzeResponse
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if env.Status != "ok" {
				t.Fatalf("reference run failed on net %d: %+v", i, env)
			}
			reference[i] = env.Report
		}
	}

	// Chaos topology: backend → fault proxy → coordinator, three wide.
	type lane struct {
		ts    *httptest.Server // the real service
		proxy *fault.Proxy
		front *httptest.Server // what the coordinator routes to
	}
	lanes := make([]*lane, 3)
	urls := make([]string, 3)
	for i := range lanes {
		_, ts := bootBackend(t, server.Config{})
		p := fault.NewProxy(ts.URL, uint64(100+i))
		front := httptest.NewServer(p)
		t.Cleanup(front.Close)
		lanes[i] = &lane{ts: ts, proxy: p, front: front}
		urls[i] = front.URL
	}

	cfg := fastConfig(urls...)
	cfg.HedgeAfter = 150 * time.Millisecond
	c, front := bootCoord(t, cfg)

	// The batch: posts race the fault injection. Once a third of the
	// jobs are done, backend 1 dies (connections cut, listener closed —
	// the SIGKILL shape) and backend 2's proxy starts garbling most of
	// its traffic.
	var done atomic.Int64
	var faultOnce sync.Once
	injectFaults := func() {
		faultOnce.Do(func() {
			lanes[1].ts.CloseClientConnections()
			lanes[1].ts.Close()
			lanes[2].proxy.SetBehavior(fault.ProxyBehavior{
				Err5xxPct: 30, TornPct: 20, ResetPct: 20,
			})
		})
	}

	got := make([][]byte, len(srcs))
	var mu sync.Mutex
	var failures []string
	var degraded int64
	var wg sync.WaitGroup
	sem := make(chan struct{}, 4)
	for i, src := range srcs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, src string) {
			defer wg.Done()
			defer func() { <-sem }()
			if done.Load() >= int64(len(srcs))/3 {
				injectFaults()
			}
			// The coordinator absorbs the faults; the client side still
			// keeps a small bounded retry for the window where breakers
			// are mid-trip.
			var code int
			var env AnalyzeResponse
			for attempt := 0; attempt < 5; attempt++ {
				code, env = postCoord(t, front.URL, src)
				if code == http.StatusOK && env.Status == "ok" {
					break
				}
				time.Sleep(time.Duration(10*(attempt+1)) * time.Millisecond)
			}
			done.Add(1)
			mu.Lock()
			defer mu.Unlock()
			if code != http.StatusOK || env.Status != "ok" {
				failures = append(failures, env.Error)
				return
			}
			if env.Degraded {
				degraded++
			}
			got[i] = env.Report
		}(i, src)
	}
	wg.Wait()

	// Zero lost jobs.
	if len(failures) > 0 {
		t.Fatalf("%d/%d jobs lost: %q", len(failures), len(srcs), failures)
	}
	// Byte-identical to the fault-free reference.
	for i := range srcs {
		if !bytes.Equal(got[i], reference[i]) {
			t.Errorf("net %d: chaos-run report diverged from fault-free reference", i)
		}
	}
	// The faults actually bit: the dead backend's prefix range failed
	// over, and the proxies injected real damage.
	rep := c.StatsReport()
	if rep.Requests.Failovers < 1 {
		t.Fatalf("no failovers recorded — the kill did not exercise rerouting: %+v", rep.Requests)
	}
	if inj := lanes[2].proxy.Injected(); len(inj) == 0 {
		t.Logf("garbling proxy injected nothing (all traffic routed away first): %+v", inj)
	} else {
		t.Logf("injected faults: %+v; failovers=%d retries=%d hedges=%d degraded=%d",
			inj, rep.Requests.Failovers, rep.Requests.Retries, rep.Requests.Hedges, degraded)
	}
}

// TestCoordChaosGarbledOnlyLane pins the garbling-only scenario without
// a kill: every lane healthy but one proxy substituting non-JSON 502s
// and tearing bodies for all its traffic. Retries and failover keep
// every answer correct.
func TestCoordChaosGarbledOnlyLane(t *testing.T) {
	srcs := testCorpus(t, 10)

	_, ref := bootBackend(t, server.Config{})
	reference := make([][]byte, len(srcs))
	for i, src := range srcs {
		resp, err := http.Post(ref.URL+"/v1/analyze", "text/plain", strings.NewReader(src))
		if err != nil {
			t.Fatal(err)
		}
		var env server.AnalyzeResponse
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		reference[i] = env.Report
	}

	_, clean := bootBackend(t, server.Config{})
	_, dirty := bootBackend(t, server.Config{})
	p := fault.NewProxy(dirty.URL, 7)
	p.SetBehavior(fault.ProxyBehavior{Err5xxPct: 50, TornPct: 50})
	dirtyFront := httptest.NewServer(p)
	t.Cleanup(dirtyFront.Close)

	c, front := bootCoord(t, fastConfig(clean.URL, dirtyFront.URL))
	for i, src := range srcs {
		code, env := postCoord(t, front.URL, src)
		if code != http.StatusOK || env.Status != "ok" {
			t.Fatalf("net %d through garbled lane: code=%d env=%+v", i, code, env)
		}
		if !bytes.Equal(env.Report, reference[i]) {
			t.Errorf("net %d: report diverged behind the garbling proxy", i)
		}
	}
	rep := c.StatsReport()
	if rep.Requests.Failovers < 1 && p.Injected()["5xx"]+p.Injected()["torn"] > 0 {
		t.Fatalf("garbled lane never failed over: %+v injected=%+v", rep.Requests, p.Injected())
	}
}

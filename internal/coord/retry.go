package coord

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"fcpn/internal/fault"
)

// FaultClass sorts a request outcome into the retry policy's three
// buckets. The classification is the contract of the whole failover
// design: because reports are content-addressed and byte-identical
// across isomorphic requests, retrying a Transient outcome anywhere can
// never change an answer — while retrying a Terminal one can never
// *produce* one (the refusal is about the request, not the host).
type FaultClass int

const (
	// ClassOK: a definitive answer (2xx, or a terminal refusal the
	// caller should surface as-is).
	ClassOK FaultClass = iota
	// ClassTransient: the fault is about the path or the moment, not
	// the work — retry, hedge or fail over.
	ClassTransient
	// ClassTerminal: retrying the same bytes can only reproduce the
	// refusal (malformed net, oversize body, quarantined hash).
	ClassTerminal
)

// ClassifyStatus buckets an HTTP status from a qssd backend.
// Transient: 429 (admission window full — the host is alive and says
// when to come back), 502 (an intermediary, not the engine), 503
// (draining for restart), 504 (per-request deadline; the engine's own
// retry-on-budget-trip may clear it on a quieter host). Terminal: 400
// (malformed net), 404 (unknown report hash), 413 (oversize body), 422
// (quarantined — every host would refuse the same canonical hash), 500
// (the engine already panicked, retried and quarantined; a resubmit
// gets the 422). Everything else 2xx-adjacent is OK.
func ClassifyStatus(code int) FaultClass {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return ClassTransient
	case http.StatusBadRequest, http.StatusNotFound,
		http.StatusRequestEntityTooLarge, http.StatusUnprocessableEntity,
		http.StatusInternalServerError:
		return ClassTerminal
	}
	if code >= 200 && code < 300 {
		return ClassOK
	}
	if code >= 500 {
		return ClassTransient
	}
	return ClassTerminal
}

// Transient reports whether a transport-level error is worth retrying.
// Every transport error is: connection refused (host down — fail
// over), reset (host died mid-exchange), timeouts, and torn bodies
// surfacing as unexpected EOF. A context cancellation is the caller
// giving up, not the network failing, so it is not transient.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// Backoff produces bounded, seeded-jittered exponential delays. The
// jitter matters as much as the growth: a fleet of blocked senders
// sleeping the same Retry-After wakes as a thundering herd at the same
// instant; drawing each sleep from a seeded stream spreads them out
// while keeping any single run reproducible.
type Backoff struct {
	// Base is the attempt-0 delay; each attempt doubles it, capped at
	// Max.
	Base time.Duration
	Max  time.Duration

	mu  sync.Mutex
	rng *fault.Rand
}

// NewBackoff builds a seeded backoff; base and max are clamped to sane
// defaults (25ms, 2s) when non-positive.
func NewBackoff(base, max time.Duration, seed uint64) *Backoff {
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	if max < base {
		max = base
	}
	return &Backoff{Base: base, Max: max, rng: fault.NewRand(seed)}
}

// Delay returns the sleep before retry `attempt` (0-based): the capped
// exponential with half its span jittered, i.e. uniform in
// [d/2, d). Goroutine-safe; the draw order is the arrival order.
func (b *Backoff) Delay(attempt int) time.Duration {
	d := b.Base
	for i := 0; i < attempt && d < b.Max; i++ {
		d *= 2
	}
	if d > b.Max {
		d = b.Max
	}
	return d/2 + b.jitter(d/2)
}

// Honour turns a server-provided Retry-After hint into a sleep: the
// hint plus up to half of it again in seeded jitter, so blocked senders
// honouring the same hint do not stampede back together.
func (b *Backoff) Honour(retryAfter time.Duration) time.Duration {
	if retryAfter <= 0 {
		return b.Delay(0)
	}
	return retryAfter + b.jitter(retryAfter/2)
}

func (b *Backoff) jitter(span time.Duration) time.Duration {
	if span <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return time.Duration(b.rng.Uint64() % uint64(span))
}

// SleepCtx sleeps d or returns the context's error first — the
// cancellation-aware sleep every retry loop here uses.
func SleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// RetryAfter extracts the Retry-After hint (whole seconds form) from a
// response, 0 if absent or unparsable.
func RetryAfter(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && sec > 0 {
		return time.Duration(sec) * time.Second
	}
	return 0
}

// WaitReady polls GET base+"/readyz" with context-aware exponential
// backoff until the service answers 200, the budget runs out, or ctx is
// cancelled. It replaces fixed-interval sleep loops in the qssd client
// and is the same probe the coordinator's breaker loop uses.
func WaitReady(ctx context.Context, hc *http.Client, base string, budget time.Duration) error {
	ctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	bo := NewBackoff(10*time.Millisecond, 500*time.Millisecond, 0)
	var last error
	for attempt := 0; ; attempt++ {
		ok, err := ProbeReady(ctx, hc, base)
		if ok {
			return nil
		}
		last = err
		if err := SleepCtx(ctx, bo.Delay(attempt)); err != nil {
			return fmt.Errorf("server %s not ready after %v: %w", base, budget, last)
		}
	}
}

// ProbeReady performs one readiness probe: true iff /readyz answers
// 200. The error reports what went wrong instead (non-200 status or
// transport failure).
func ProbeReady(ctx context.Context, hc *http.Client, base string) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
	if err != nil {
		return false, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return false, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("readyz: %s", resp.Status)
	}
	return true, nil
}

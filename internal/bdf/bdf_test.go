package bdf

import (
	"errors"
	"strings"
	"testing"

	"fcpn/internal/core"
)

// buildIfThenElse builds the classic BDF if-then-else, closed by a credit
// loop so an infinite play must cycle through the whole graph:
//
//	src -> d -> SWITCH -> A -> f -> A' -> SELECT -> out -> sinkact -> credit -> src
//	                   -> B -> g -> B' ->
//	src also emits the control tokens for switch and select.
func buildIfThenElse(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	src := g.AddCompute("src")
	sw := g.AddSwitch("sw")
	f := g.AddCompute("f")
	gg := g.AddCompute("g")
	sel := g.AddSelect("sel")
	out := g.AddCompute("out")
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.Connect(out, src, 1, 1, 1)) // credit loop, one initial token
	must(g.Connect(src, sw, 1, 1, 0))  // data into switch
	must(g.ConnectRole(src, RoleData, sw, RoleControl, 0))
	must(g.ConnectRole(src, RoleData, sel, RoleControl, 0))
	must(g.ConnectRole(sw, RoleTrue, f, RoleData, 0))
	must(g.ConnectRole(sw, RoleFalse, gg, RoleData, 0))
	must(g.ConnectRole(f, RoleData, sel, RoleTrue, 0))
	must(g.ConnectRole(gg, RoleData, sel, RoleFalse, 0))
	must(g.Connect(sel, out, 1, 1, 0))
	return g
}

// buildAdversarialJoin routes tokens to one of two branches that a join
// needs BOTH of: an adversary that always picks one side starves the
// other, so no buffer bound can be certified (the Figure 3b situation in
// BDF clothing).
func buildAdversarialJoin(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	src := g.AddCompute("src")
	sw := g.AddSwitch("sw")
	join := g.AddCompute("join")
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	// src self-credits so it can always fire (environment).
	must(g.Connect(src, src, 1, 1, 1))
	must(g.Connect(src, sw, 1, 1, 0))
	must(g.ConnectRole(src, RoleData, sw, RoleControl, 0))
	must(g.ConnectRole(sw, RoleTrue, join, RoleData, 0))
	must(g.ConnectRole(sw, RoleFalse, join, RoleData, 0))
	return g
}

func TestIfThenElseSchedulable(t *testing.T) {
	g := buildIfThenElse(t)
	verdict, bound, err := g.CheckBoundedSchedulable(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if verdict != Schedulable {
		t.Fatalf("verdict = %v, want schedulable", verdict)
	}
	if bound != 1 {
		t.Fatalf("bound = %d, want 1", bound)
	}
}

func TestAdversarialJoinUnknown(t *testing.T) {
	g := buildAdversarialJoin(t)
	verdict, _, err := g.CheckBoundedSchedulable(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if verdict != Unknown {
		t.Fatalf("verdict = %v, want unknown (Buck-style search cannot prove unschedulability)", verdict)
	}
}

// TestAbstractionDecides is the paper's core claim about BDF: the FCPN
// abstraction makes the question decidable. The same graph that the
// bounded BDF search can only call "unknown" is *definitively* diagnosed
// as not schedulable by QSS on its free-choice abstraction; the
// if-then-else is definitively schedulable.
func TestAbstractionDecides(t *testing.T) {
	// If-then-else: abstraction schedulable.
	n, err := buildIfThenElse(t).Abstract("ite")
	if err != nil {
		t.Fatal(err)
	}
	if !n.IsFreeChoice() {
		t.Fatal("abstraction must be free-choice")
	}
	s, err := core.Solve(n, core.Options{})
	if err != nil {
		t.Fatalf("abstracted if-then-else must be schedulable: %v", err)
	}
	if len(s.Cycles) != 2 {
		t.Fatalf("cycles = %d", len(s.Cycles))
	}

	// Adversarial join: abstraction definitively not schedulable.
	n2, err := buildAdversarialJoin(t).Abstract("join")
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.Solve(n2, core.Options{})
	var nse *core.NotSchedulableError
	if !errors.As(err, &nse) {
		t.Fatalf("err = %v, want definitive NotSchedulableError", err)
	}
	if nse.Report.Consistent {
		t.Fatal("the starved-branch reduction must be inconsistent")
	}
}

func TestAbstractKeepsRatesAndDelays(t *testing.T) {
	g := buildIfThenElse(t)
	n, err := g.Abstract("ite")
	if err != nil {
		t.Fatal(err)
	}
	// The credit-loop delay token must survive as initial marking.
	if n.InitialMarking().Total() != 1 {
		t.Fatalf("marking = %v", n.InitialMarking())
	}
	// Control channels vanish: 9 channels, 2 control ⇒ 7 places.
	if n.NumPlaces() != 7 {
		t.Fatalf("places = %d, want 7", n.NumPlaces())
	}
	// src, out, f, g, 2 switch halves, 2 select halves = 8 transitions.
	if n.NumTransitions() != 8 {
		t.Fatalf("transitions = %d, want 8", n.NumTransitions())
	}
}

func TestValidateShapes(t *testing.T) {
	g := NewGraph()
	sw := g.AddSwitch("sw")
	_ = sw
	if _, _, err := g.CheckBoundedSchedulable(2, 0); err == nil {
		t.Fatal("malformed switch accepted")
	}
	g2 := NewGraph()
	sel := g2.AddSelect("sel")
	_ = sel
	if _, err := g2.Abstract("x"); err == nil {
		t.Fatal("malformed select accepted")
	}
	g3 := NewGraph()
	a := g3.AddCompute("a")
	if err := g3.Connect(a, 99, 1, 1, 0); err == nil {
		t.Fatal("bad index accepted")
	}
	if err := g3.Connect(a, a, 0, 1, 0); err == nil {
		t.Fatal("bad rate accepted")
	}
}

func TestVerdictString(t *testing.T) {
	if Schedulable.String() != "schedulable" || Unknown.String() != "unknown" {
		t.Fatal("verdict strings wrong")
	}
}

func TestDelayExceedingBound(t *testing.T) {
	// A delay larger than every tested bound can never be certified.
	g := NewGraph()
	a := g.AddCompute("a")
	if err := g.Connect(a, a, 1, 1, 9); err != nil {
		t.Fatal(err)
	}
	verdict, _, err := g.CheckBoundedSchedulable(3, 0)
	if err != nil || verdict != Unknown {
		t.Fatalf("verdict = %v, %v", verdict, err)
	}
}

func TestAbstractNamesReadable(t *testing.T) {
	n, err := buildIfThenElse(t).Abstract("ite")
	if err != nil {
		t.Fatal(err)
	}
	names := strings.Join(n.SequenceNames(n.Transitions()), " ")
	for _, frag := range []string{"sw_true", "sw_false", "sel_true", "sel_false"} {
		if !strings.Contains(names, frag) {
			t.Fatalf("missing %q in %s", frag, names)
		}
	}
}

// TestAbstractionSynthesises runs the full QSS pipeline on the abstracted
// if-then-else: codegen equivalence on the closed net (no sources — an
// autonomous task driven by the credit token).
func TestAbstractionSynthesises(t *testing.T) {
	n, err := buildIfThenElse(t).Abstract("ite")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.Solve(n, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := core.PartitionTasks(n, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumTasks() != 1 {
		t.Fatalf("tasks = %d (closed net: one autonomous task)", tp.NumTasks())
	}
	for _, c := range sched.Cycles {
		if err := core.VerifyCompleteCycle(n, c.Sequence); err != nil {
			t.Fatal(err)
		}
	}
}

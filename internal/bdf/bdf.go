// Package bdf models Boolean Dataflow (Buck [5], the paper's related
// work): dataflow graphs extended with SWITCH and SELECT actors routed by
// boolean control tokens. Scheduling BDF with bounded memory is
// undecidable, so the bounded-schedulability check here is *three-valued*:
// it proves schedulability within a buffer bound when it can, and
// otherwise answers Unknown — it can never prove unschedulability. The
// paper's FCPN approach abstracts the boolean values into free choices
// (Abstract), for which quasi-static schedulability is decidable; the
// tests contrast the two on the same graphs.
package bdf

import (
	"errors"
	"fmt"

	"fcpn/internal/petri"
)

// Kind classifies an actor.
type Kind int

const (
	// KindCompute is a plain (S)DF actor with fixed rates.
	KindCompute Kind = iota
	// KindSwitch routes its data input to its true or false output
	// according to a boolean control token.
	KindSwitch
	// KindSelect forwards a token from its true or false input according
	// to a boolean control token.
	KindSelect
)

// Role tags a channel endpoint at a switch/select.
type Role int

const (
	// RoleData is an ordinary rate-annotated endpoint.
	RoleData Role = iota
	// RoleControl carries boolean control tokens.
	RoleControl
	// RoleTrue is the true-side branch of a switch output / select input.
	RoleTrue
	// RoleFalse is the false-side branch.
	RoleFalse
)

// Actor is one node.
type Actor struct {
	Name string
	Kind Kind
}

// Channel is a FIFO between actors. Produce/Consume apply to RoleData
// endpoints of compute actors; switch/select endpoints always move one
// token per firing.
type Channel struct {
	From, To         int
	FromRole, ToRole Role
	Produce, Consume int
	Delay            int
}

// Graph is a BDF graph.
type Graph struct {
	Actors   []Actor
	Channels []Channel
}

// NewGraph creates an empty BDF graph.
func NewGraph() *Graph { return &Graph{} }

// AddCompute adds a plain dataflow actor.
func (g *Graph) AddCompute(name string) int {
	g.Actors = append(g.Actors, Actor{Name: name, Kind: KindCompute})
	return len(g.Actors) - 1
}

// AddSwitch adds a SWITCH actor.
func (g *Graph) AddSwitch(name string) int {
	g.Actors = append(g.Actors, Actor{Name: name, Kind: KindSwitch})
	return len(g.Actors) - 1
}

// AddSelect adds a SELECT actor.
func (g *Graph) AddSelect(name string) int {
	g.Actors = append(g.Actors, Actor{Name: name, Kind: KindSelect})
	return len(g.Actors) - 1
}

// Connect adds a data channel with rates (compute endpoints).
func (g *Graph) Connect(from, to, produce, consume, delay int) error {
	return g.connect(Channel{From: from, To: to, FromRole: RoleData, ToRole: RoleData,
		Produce: produce, Consume: consume, Delay: delay})
}

// ConnectRole adds a channel with explicit endpoint roles; rates default
// to one token per firing on switch/select endpoints.
func (g *Graph) ConnectRole(from int, fromRole Role, to int, toRole Role, delay int) error {
	return g.connect(Channel{From: from, To: to, FromRole: fromRole, ToRole: toRole,
		Produce: 1, Consume: 1, Delay: delay})
}

func (g *Graph) connect(c Channel) error {
	if c.From < 0 || c.From >= len(g.Actors) || c.To < 0 || c.To >= len(g.Actors) {
		return fmt.Errorf("bdf: actor index out of range")
	}
	if c.Produce < 1 || c.Consume < 1 || c.Delay < 0 {
		return fmt.Errorf("bdf: invalid rates")
	}
	g.Channels = append(g.Channels, c)
	return nil
}

// Verdict is the outcome of the bounded-schedulability game.
type Verdict int

const (
	// Schedulable: a scheduling policy keeps every buffer within the
	// found bound for every boolean control stream.
	Schedulable Verdict = iota
	// Unknown: no bound up to the cap could be certified. Because
	// bounded-memory scheduling of BDF is undecidable, this is NOT a
	// proof of unschedulability.
	Unknown
)

func (v Verdict) String() string {
	if v == Schedulable {
		return "schedulable"
	}
	return "unknown"
}

// validate checks the switch/select port shapes.
func (g *Graph) validate() error {
	for ai, a := range g.Actors {
		var ctrlIn, dataIn, trueIn, falseIn, trueOut, falseOut, dataOut int
		for _, c := range g.Channels {
			if c.To == ai {
				switch c.ToRole {
				case RoleControl:
					ctrlIn++
				case RoleTrue:
					trueIn++
				case RoleFalse:
					falseIn++
				default:
					dataIn++
				}
			}
			if c.From == ai {
				switch c.FromRole {
				case RoleTrue:
					trueOut++
				case RoleFalse:
					falseOut++
				default:
					dataOut++
				}
			}
		}
		switch a.Kind {
		case KindSwitch:
			if dataIn != 1 || ctrlIn != 1 || trueOut != 1 || falseOut != 1 {
				return fmt.Errorf("bdf: switch %q needs 1 data-in, 1 control-in, 1 true-out, 1 false-out", a.Name)
			}
		case KindSelect:
			if trueIn != 1 || falseIn != 1 || ctrlIn != 1 || dataOut != 1 {
				return fmt.Errorf("bdf: select %q needs 1 true-in, 1 false-in, 1 control-in, 1 data-out", a.Name)
			}
		}
	}
	return nil
}

// state is a buffer configuration; index parallel to Channels.
type state []int

func (s state) key() string {
	b := make([]byte, len(s))
	for i, v := range s {
		b[i] = byte(v)
	}
	return string(b)
}

// CheckBoundedSchedulable plays the bounded-memory scheduling game for
// increasing buffer bounds 1…maxBound: the scheduler picks which enabled
// actor fires, the adversary picks boolean control values. The graph is
// certified schedulable with bound B when, from the initial buffer state,
// the scheduler can keep playing forever without any channel exceeding B.
// Failing every bound up to maxBound yields Unknown (undecidability: no
// finite search proves unschedulability).
func (g *Graph) CheckBoundedSchedulable(maxBound, maxStates int) (Verdict, int, error) {
	if err := g.validate(); err != nil {
		return Unknown, 0, err
	}
	if maxBound < 1 {
		maxBound = 4
	}
	if maxStates < 1 {
		maxStates = 200000
	}
	for bound := 1; bound <= maxBound; bound++ {
		ok, err := g.winsWithBound(bound, maxStates)
		if err != nil {
			return Unknown, 0, err
		}
		if ok {
			return Schedulable, bound, nil
		}
	}
	return Unknown, 0, nil
}

// winsWithBound solves the safety game for a fixed bound by a greatest
// fixpoint over the explicitly enumerated reachable-within-bound states.
func (g *Graph) winsWithBound(bound, maxStates int) (bool, error) {
	initial := make(state, len(g.Channels))
	for i, c := range g.Channels {
		if c.Delay > bound {
			return false, nil
		}
		initial[i] = c.Delay
	}

	// Explore all states reachable through ANY action/outcome, pruning
	// overflowing successors (they are losing and never entered by a
	// winning strategy, but the fixpoint below re-derives that properly:
	// an action with an overflowing outcome is simply unavailable).
	index := map[string]int{initial.key(): 0}
	states := []state{append(state(nil), initial...)}
	// actions[s] lists, per available action, the successor state ids.
	var actions [][][]int
	for head := 0; head < len(states); head++ {
		if len(states) > maxStates {
			return false, errors.New("bdf: state space exceeds cap")
		}
		var acts [][]int
		for ai := range g.Actors {
			outcomes, enabled := g.fire(states[head], ai, bound)
			if !enabled {
				continue
			}
			if outcomes == nil {
				// Enabled but some outcome overflows: action unavailable
				// for a winning scheduler.
				continue
			}
			var ids []int
			for _, out := range outcomes {
				k := out.key()
				id, seen := index[k]
				if !seen {
					id = len(states)
					index[k] = id
					states = append(states, out)
				}
				ids = append(ids, id)
			}
			acts = append(acts, ids)
		}
		actions = append(actions, acts)
		// states may have grown; actions for new states computed as the
		// loop reaches them.
	}

	// Greatest fixpoint: W := all states; repeatedly remove states with
	// no action whose outcomes all remain in W.
	in := make([]bool, len(states))
	for i := range in {
		in[i] = true
	}
	for changed := true; changed; {
		changed = false
		for s := range states {
			if !in[s] {
				continue
			}
			good := false
			for _, outcomes := range actions[s] {
				all := true
				for _, id := range outcomes {
					if !in[id] {
						all = false
						break
					}
				}
				if all {
					good = true
					break
				}
			}
			if !good {
				in[s] = false
				changed = true
			}
		}
	}
	return in[0], nil
}

// fire computes the successor states of firing actor ai in s under bound.
// enabled=false when the actor cannot fire; outcomes=nil (with
// enabled=true) when some adversary outcome would overflow the bound.
func (g *Graph) fire(s state, ai, bound int) (outcomes []state, enabled bool) {
	a := g.Actors[ai]
	var inIdx, outIdx []int
	for ci, c := range g.Channels {
		if c.To == ai {
			inIdx = append(inIdx, ci)
		}
		if c.From == ai {
			outIdx = append(outIdx, ci)
		}
	}
	switch a.Kind {
	case KindCompute:
		for _, ci := range inIdx {
			if s[ci] < g.Channels[ci].Consume {
				return nil, false
			}
		}
		next := append(state(nil), s...)
		for _, ci := range inIdx {
			next[ci] -= g.Channels[ci].Consume
		}
		for _, ci := range outIdx {
			next[ci] += g.Channels[ci].Produce
			if next[ci] > bound {
				return nil, true
			}
		}
		return []state{next}, true

	case KindSwitch:
		var dataC, ctrlC, trueC, falseC = -1, -1, -1, -1
		for _, ci := range inIdx {
			if g.Channels[ci].ToRole == RoleControl {
				ctrlC = ci
			} else {
				dataC = ci
			}
		}
		for _, ci := range outIdx {
			if g.Channels[ci].FromRole == RoleTrue {
				trueC = ci
			} else {
				falseC = ci
			}
		}
		if s[dataC] < 1 || s[ctrlC] < 1 {
			return nil, false
		}
		base := append(state(nil), s...)
		base[dataC]--
		base[ctrlC]--
		for _, out := range []int{trueC, falseC} {
			next := append(state(nil), base...)
			next[out]++
			if next[out] > bound {
				return nil, true // adversary can force overflow
			}
			outcomes = append(outcomes, next)
		}
		return outcomes, true

	case KindSelect:
		var ctrlC, trueC, falseC, outC = -1, -1, -1, -1
		for _, ci := range inIdx {
			switch g.Channels[ci].ToRole {
			case RoleControl:
				ctrlC = ci
			case RoleTrue:
				trueC = ci
			default:
				falseC = ci
			}
		}
		outC = outIdx[0]
		if s[ctrlC] < 1 {
			return nil, false
		}
		// The adversary owns the control value: the select can only fire
		// safely when the chosen side has a token whichever way the value
		// falls, so a winning scheduler fires it with both sides
		// non-empty; with one side empty the adversary could block it,
		// so the action consumes from the non-empty side only when the
		// *control stream correlation* guarantees it — which this
		// abstraction cannot see. We expose both behaviours: if both
		// sides have tokens, adversary picks the side; if exactly one
		// side has tokens, that side is consumed (optimistic in-order
		// matching, Buck's special case).
		sides := []int{}
		if s[trueC] >= 1 {
			sides = append(sides, trueC)
		}
		if s[falseC] >= 1 {
			sides = append(sides, falseC)
		}
		if len(sides) == 0 {
			return nil, false
		}
		for _, side := range sides {
			next := append(state(nil), s...)
			next[ctrlC]--
			next[side]--
			next[outC]++
			if next[outC] > bound {
				return nil, true
			}
			outcomes = append(outcomes, next)
		}
		return outcomes, true
	}
	return nil, false
}

// Abstract lowers the BDF graph to the paper's FCPN abstraction: boolean
// control values become non-deterministic free choices. Channels become
// places; compute actors become transitions; a switch becomes a choice
// place with two consumer transitions (one per branch); a select becomes
// two transitions merging into the output place. Control channels vanish
// (their information is exactly what the abstraction forgets).
func (g *Graph) Abstract(name string) (*petri.Net, error) {
	if err := g.validate(); err != nil {
		return nil, err
	}
	b := petri.NewBuilder(name)
	places := make([]petri.Place, len(g.Channels))
	isCtrl := make([]bool, len(g.Channels))
	for ci, c := range g.Channels {
		if c.ToRole == RoleControl {
			isCtrl[ci] = true
			continue
		}
		places[ci] = b.MarkedPlace(fmt.Sprintf("ch%d", ci), c.Delay)
	}
	for ai, a := range g.Actors {
		switch a.Kind {
		case KindCompute:
			t := b.Transition(a.Name)
			for ci, c := range g.Channels {
				if isCtrl[ci] {
					continue
				}
				if c.To == ai {
					b.WeightedArc(places[ci], t, c.Consume)
				}
				if c.From == ai {
					b.WeightedArcTP(t, places[ci], c.Produce)
				}
			}
		case KindSwitch:
			var dataC, trueC, falseC int
			for ci, c := range g.Channels {
				if c.To == ai && !isCtrl[ci] {
					dataC = ci
				}
				if c.From == ai && c.FromRole == RoleTrue {
					trueC = ci
				}
				if c.From == ai && c.FromRole == RoleFalse {
					falseC = ci
				}
			}
			tt := b.Transition(a.Name + "_true")
			tf := b.Transition(a.Name + "_false")
			b.Arc(places[dataC], tt)
			b.Arc(places[dataC], tf)
			b.ArcTP(tt, places[trueC])
			b.ArcTP(tf, places[falseC])
		case KindSelect:
			var trueC, falseC, outC int
			for ci, c := range g.Channels {
				if c.To == ai && c.ToRole == RoleTrue {
					trueC = ci
				}
				if c.To == ai && c.ToRole == RoleFalse {
					falseC = ci
				}
				if c.From == ai {
					outC = ci
				}
			}
			tt := b.Transition(a.Name + "_true")
			tf := b.Transition(a.Name + "_false")
			b.Arc(places[trueC], tt)
			b.Arc(places[falseC], tf)
			b.ArcTP(tt, places[outC])
			b.ArcTP(tf, places[outC])
		}
	}
	return b.Build(), nil
}

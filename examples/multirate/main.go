// Multirate: the paper's Figure 4 net, whose weighted arcs make the two
// choice branches fire at different rates — t4 needs two tokens (an
// if-guarded counting variable), t5 drains two tokens per production (a
// while loop). The output is the C listing of Section 4 of the paper.
//
// The example also demonstrates the interpreter: the generated code is
// executed against a data stream and its counters are checked against the
// net's state equation after every input event.
package main

import (
	"fmt"
	"log"

	"fcpn"
	"fcpn/internal/figures"
)

func main() {
	net := figures.Figure4()
	syn, err := fcpn.Synthesize(net, fcpn.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Valid schedule (paper: {(t1 t2 t1 t2 t4), (t1 t3 t5 t5)}) ===")
	for _, cycle := range syn.Schedule.CycleStrings() {
		fmt.Println(" ", cycle)
	}

	fmt.Println("\n=== Generated C (paper Section 4 listing) ===")
	fmt.Println(syn.C(true))

	// Execute the generated program on an alternating decision stream and
	// show the firing counts staying in lock-step with the net semantics.
	fmt.Println("=== Interpreted execution, 8 input events, alternating choice ===")
	turn := 0
	in := fcpn.NewInterp(syn.Program, func(p fcpn.Place, alts []fcpn.Transition) int {
		turn++
		return turn % 2
	})
	t1, _ := net.TransitionByName("t1")
	for i := 0; i < 8; i++ {
		if err := in.RunSource(t1); err != nil {
			log.Fatal(err)
		}
	}
	if err := in.StateEquationCheck(); err != nil {
		log.Fatal(err)
	}
	for t := 0; t < net.NumTransitions(); t++ {
		fmt.Printf("  %s fired %d times\n",
			net.TransitionName(fcpn.Transition(t)), in.Stats.Fired[t])
	}
	fmt.Println("state equation check: OK (code counters == net marking)")
}

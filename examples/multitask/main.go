// Multitask: two independent-rate inputs — a keyboard (irregular
// interrupts) and a sample timer (periodic) — sharing a display driver,
// the paper's Figure 5 situation in an application costume. QSS partitions
// the specification into exactly two tasks, one per input, with the shared
// display-update code emitted once and called from both (the paper's
// cross-task shared code).
package main

import (
	"fmt"
	"log"
	"strings"

	"fcpn"
)

func main() {
	b := fcpn.NewBuilder("multitask")

	// Keyboard path: key -> decode -> (command | text) -> display request.
	key := b.Transition("Key")
	pKey := b.Place("p_key")
	decode := b.Transition("decode")
	pKind := b.Place("p_kind") // data-dependent: command or text?
	b.Chain(key, pKey, decode, pKind)
	command := b.Transition("run_command")
	text := b.Transition("insert_text")
	b.Arc(pKind, command)
	b.Arc(pKind, text)
	pDisp := b.Place("p_disp") // merge: display work queue
	b.ArcTP(command, pDisp)
	b.ArcTP(text, pDisp)

	// Timer path: tick -> sample -> filter (every 2 samples) -> display.
	tick := b.Transition("Tick")
	pTick := b.Place("p_tick")
	sample := b.Transition("sample")
	pRaw := b.Place("p_raw")
	b.Chain(tick, pTick, sample)
	b.ArcTP(sample, pRaw)
	filter := b.Transition("filter")
	b.WeightedArc(pRaw, filter, 2) // decimating filter: 2 samples per output
	b.ArcTP(filter, pDisp)

	// Shared display driver.
	display := b.Transition("update_display")
	b.Chain(pDisp, display)

	net := b.Build()
	syn, err := fcpn.Synthesize(net, fcpn.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("inputs: Key (irregular), Tick (periodic) — independent rates\n")
	fmt.Printf("tasks synthesised: %d\n", syn.NumTasks())
	for _, task := range syn.Partition.Tasks {
		fmt.Printf("  %s: %s\n", task.Name,
			strings.Join(net.SequenceNames(task.Transitions), " "))
	}
	shared := syn.Partition.SharedTransitions()
	fmt.Printf("shared code: %s\n\n", strings.Join(net.SequenceNames(shared), " "))
	fmt.Println(syn.C(false))
}

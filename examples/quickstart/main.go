// Quickstart: build the paper's Figure 3a net — one input, one
// data-dependent choice, two sink chains — check schedulability, and
// synthesise the C implementation.
package main

import (
	"fmt"
	"log"
	"strings"

	"fcpn"
)

func main() {
	// A specification with a data-dependent control structure: after the
	// input arrives (t1), the value of the token in p1 decides between
	// the t2-t4 pipeline and the t3-t5 pipeline.
	b := fcpn.NewBuilder("quickstart")
	in := b.Transition("input")
	decide := b.Place("decision")
	b.ArcTP(in, decide)

	fast := b.Transition("fast_path")
	slow := b.Transition("slow_path")
	b.Arc(decide, fast)
	b.Arc(decide, slow)

	fastOut := b.Place("fast_out")
	slowOut := b.Place("slow_out")
	emitFast := b.Transition("emit_fast")
	emitSlow := b.Transition("emit_slow")
	b.Chain(fast, fastOut, emitFast)
	b.Chain(slow, slowOut, emitSlow)
	net := b.Build()

	// Synthesize = schedulability check + valid schedule + task
	// partition + code generation.
	syn, err := fcpn.Synthesize(net, fcpn.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("net %q: schedulable with %d finite complete cycles\n",
		net.Name(), len(syn.Schedule.Cycles))
	for i, cycle := range syn.Schedule.CycleStrings() {
		fmt.Printf("  cycle %d: %s\n", i+1, strings.Join(cycle, " "))
	}
	fmt.Printf("tasks: %d\n\n", syn.NumTasks())
	fmt.Println(syn.C(true))
}

// Pipeline: a multirate signal-processing chain — the pure-dataflow case
// the paper's Section 2 builds on. An SDF graph with a 2:1 downsampler and
// a 1:3 frame assembler is statically scheduled (Lee–Messerschmitt), its
// repetition vector and buffer bounds computed, and the same graph is then
// round-tripped through the Petri-net view and scheduled by the QSS
// machinery (a marked graph is the choice-free special case: one
// T-allocation, one finite complete cycle).
package main

import (
	"fmt"
	"log"

	"fcpn"
	"fcpn/internal/sdf"
)

func main() {
	// src --1:1--> fir --2:1--> down --1:3--> frame
	g := sdf.NewGraph()
	src := g.AddActor("src")
	fir := g.AddActor("fir")
	down := g.AddActor("down")
	frame := g.AddActor("frame")
	must(g.Connect(src, fir, 1, 1, 0))
	must(g.Connect(fir, down, 1, 2, 0))   // downsampler eats 2 per output
	must(g.Connect(down, frame, 1, 3, 0)) // framer needs 3 samples

	q, err := g.RepetitionVector()
	must(err)
	fmt.Printf("repetition vector: src=%d fir=%d down=%d frame=%d\n", q[src], q[fir], q[down], q[frame])

	order, err := g.Schedule()
	must(err)
	fmt.Printf("PASS: %s\n", g.FlatSchedule(order))

	bounds, err := g.BufferBounds(order)
	must(err)
	for i, c := range g.Channels {
		fmt.Printf("buffer %s->%s: %d tokens\n", g.Actors[c.From].Name, g.Actors[c.To].Name, bounds[i])
	}

	// The same chain through the Petri-net / QSS view.
	net := g.ToPetri("pipeline")
	syn, err := fcpn.Synthesize(net, fcpn.Options{})
	must(err)
	fmt.Printf("\nQSS view: %d allocation(s), %d cycle(s), %d task(s)\n",
		syn.Schedule.AllocationCount, len(syn.Schedule.Cycles), syn.NumTasks())
	fmt.Printf("cycle: %v\n", syn.Schedule.CycleStrings()[0])
	fmt.Println("\nGenerated C:")
	fmt.Println(syn.C(false))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// ATM server: the paper's Section 5 case study end to end. The FCPN model
// (49 transitions, 41 places, 11 free choices, two independent-rate
// inputs) is scheduled quasi-statically into two tasks, synthesised to C,
// and then executed with real WFQ + message-discard semantics resolving
// the choices, against the 50-cell testbench — finally reproducing
// Table I against the functional five-task baseline.
package main

import (
	"fmt"
	"log"

	"fcpn"
	"fcpn/internal/atm"
	"fcpn/internal/rtos"
	"fcpn/internal/sim"
)

func main() {
	m := atm.New()
	fmt.Printf("ATM server FCPN: %d transitions, %d places, %d free choices\n",
		m.Net.NumTransitions(), m.Net.NumPlaces(), len(m.Net.FreeChoiceSets()))

	syn, err := fcpn.Synthesize(m.Net, fcpn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedulable: %d T-allocations collapse to %d T-reductions (cycles)\n",
		syn.Schedule.AllocationCount, len(syn.Schedule.Cycles))
	fmt.Printf("tasks: %d (one per independent-rate input: Cell, Tick)\n\n", syn.NumTasks())

	// Run the synthesised implementation with the behavioural model
	// resolving the choices: real WFQ virtual times, a real shared
	// buffer, real per-VC discard state.
	server := atm.NewServer(m, atm.DefaultConfig())
	w := atm.NewWorkload(m, atm.DefaultWorkload())
	metrics, err := sim.RunQSSWithHooks(syn.Program, w.Events, rtos.DefaultCostModel(), sim.Hooks{
		Resolver:    server.Resolver(),
		OnFire:      server.OnFire,
		BeforeEvent: w.CellFeeder(m, server),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QSS run: %d events, %d activations, %d cycles\n",
		metrics.Events, metrics.Activations, metrics.Cycles)
	fmt.Printf("server stats: %+v\n\n", server.Stats)

	// Table I.
	res, err := atm.RunTableI(atm.DefaultWorkload(), rtos.DefaultCostModel())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table I reproduction (testbench of 50 ATM cells):")
	fmt.Print(res.Format())
	fmt.Printf("\ncycle ratio functional/QSS = %.2f (paper: 1.26), code ratio = %.2f (paper: 1.31)\n",
		float64(res.Functional.ClockCycles)/float64(res.QSS.ClockCycles),
		float64(res.Functional.LinesOfC)/float64(res.QSS.LinesOfC))
}

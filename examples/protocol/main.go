// Protocol: a link-layer frame handler written in the process-network
// frontend rather than as a raw Petri net. Frames arrive from the line
// (irregular), a housekeeping timer ticks periodically; data frames are
// checked, stored in batches of two and acknowledged, control frames
// update the link state; the timer drains the retransmit queue. The
// specification compiles to an FCPN, is checked schedulable, partitioned
// into two tasks and synthesised to C.
package main

import (
	"fmt"
	"log"
	"strings"

	"fcpn"
)

func main() {
	s := fcpn.NewSystem("protocol")
	frame := s.Input("Frame")
	timer := s.Input("Timer")
	ackOut := s.Output("AckOut")
	retx := s.Output("Retransmit")

	s.Process("rx").
		Receive(frame).
		Run("check_fcs").
		If("frame_kind",
			fcpn.Branch{Label: "data", Body: func(p *fcpn.Process) {
				p.Run("store_payload").
					Repeat(2, func(b *fcpn.Process) { b.Run("write_half") }).
					Run("send_ack").
					Send(ackOut)
			}},
			fcpn.Branch{Label: "control", Body: func(p *fcpn.Process) {
				p.Run("update_link_state")
			}},
			fcpn.Branch{Label: "corrupt", Body: func(p *fcpn.Process) {
				p.Run("count_error")
			}},
		)

	s.Process("housekeeping").
		Receive(timer).
		Run("scan_timeouts").
		If("pending",
			fcpn.Branch{Label: "resend", Body: func(p *fcpn.Process) {
				p.Run("build_retx").Send(retx)
			}},
			fcpn.Branch{Label: "idle", Body: func(p *fcpn.Process) {
				p.Run("refresh_timers")
			}},
		)

	net, err := s.Compile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled FCPN: %d transitions, %d places, %d choices\n",
		net.NumTransitions(), net.NumPlaces(), len(net.FreeChoiceSets()))

	syn, err := fcpn.Synthesize(net, fcpn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedulable: %d cycles, %d tasks\n", len(syn.Schedule.Cycles), syn.NumTasks())
	for _, task := range syn.Partition.Tasks {
		fmt.Printf("  %s: %s\n", task.Name,
			strings.Join(net.SequenceNames(task.Transitions), " "))
	}
	fmt.Println()
	fmt.Println(syn.C(false))
}

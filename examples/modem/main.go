// Modem: the repository's second case study — a dial-up soft-modem
// receive path specified as a process network, synthesised into two tasks
// (one per independent-rate input: ADC samples and host commands), and
// compared against a three-module functional baseline on a synthetic
// telephone line with carrier drop-outs.
package main

import (
	"fmt"
	"log"
	"strings"

	"fcpn"
	"fcpn/internal/modem"
	"fcpn/internal/rtos"
)

func main() {
	m, err := modem.New()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("modem FCPN: %d transitions, %d places, %d choices\n",
		m.Net.NumTransitions(), m.Net.NumPlaces(), len(m.Net.FreeChoiceSets()))

	syn, err := fcpn.Synthesize(m.Net, fcpn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedulable: %d finite complete cycles, %d tasks\n",
		len(syn.Schedule.Cycles), syn.NumTasks())
	for _, task := range syn.Partition.Tasks {
		fmt.Printf("  %s: %s\n", task.Name,
			strings.Join(m.Net.SequenceNames(task.Transitions), " "))
	}
	fmt.Printf("shared: %s\n\n",
		strings.Join(m.Net.SequenceNames(syn.Partition.SharedTransitions()), " "))

	res, err := modem.RunComparison(modem.DefaultWorkload(), rtos.DefaultCostModel())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s %12s %24s\n", "", res.QSS.Name, res.Functional.Name)
	fmt.Printf("%-24s %12d %24d\n", "Number of tasks", res.QSS.Tasks, res.Functional.Tasks)
	fmt.Printf("%-24s %12d %24d\n", "Lines of C code", res.QSS.LinesOfC, res.Functional.LinesOfC)
	fmt.Printf("%-24s %12d %24d\n", "Clock cycles", res.QSS.ClockCycles, res.Functional.ClockCycles)
	fmt.Printf("%-24s %12d %24d\n", "Task activations", res.QSS.Activations, res.Functional.Activations)
	fmt.Printf("\nline stats: %+v\n", res.Stats)
}

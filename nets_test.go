package fcpn

import (
	"os"
	"path/filepath"
	"testing"

	"fcpn/internal/atm"
	"fcpn/internal/figures"
	"fcpn/internal/petri"
)

// TestShippedNetFiles keeps examples/nets/*.pn in sync with the canonical
// constructors in internal/figures: each file must parse and serialise to
// exactly the constructor's Format output.
func TestShippedNetFiles(t *testing.T) {
	all := figures.All()
	files, err := filepath.Glob("examples/nets/*.pn")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(all)+1 { // figures + atmserver.pn
		t.Fatalf("have %d .pn files, want %d (one per figure + atmserver)", len(files), len(all)+1)
	}
	for _, path := range files {
		name := filepath.Base(path)
		name = name[:len(name)-len(".pn")]
		if name == "atmserver" {
			continue // checked by TestShippedATMNet
		}
		want, ok := all[name]
		if !ok {
			t.Fatalf("unexpected net file %s", path)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		n, err := petri.ParseString(string(data))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if petri.Format(n) != petri.Format(want) {
			t.Fatalf("%s is out of sync with figures.%s:\n--- file ---\n%s--- constructor ---\n%s",
				path, name, petri.Format(n), petri.Format(want))
		}
	}
}

// TestShippedNetsVerdicts pins each shipped net's schedulability verdict,
// so the sample files double as regression inputs for the CLI.
func TestShippedNetsVerdicts(t *testing.T) {
	verdicts := map[string]bool{
		"figure2":  true,
		"figure3a": true,
		"figure3b": false,
		"figure4":  true,
		"figure5":  true,
		"figure7":  false,
	}
	for name, want := range verdicts {
		data, err := os.ReadFile(filepath.Join("examples", "nets", name+".pn"))
		if err != nil {
			t.Fatal(err)
		}
		n := MustParseString(string(data))
		if got := Schedulable(n, Options{}); got != want {
			t.Fatalf("%s: schedulable = %v, want %v", name, got, want)
		}
	}
}

// TestShippedATMNet keeps the shipped ATM sample in sync with the model
// constructor and pins its headline numbers.
func TestShippedATMNet(t *testing.T) {
	data, err := os.ReadFile("examples/nets/atmserver.pn")
	if err != nil {
		t.Fatal(err)
	}
	n := MustParseString(string(data))
	if petri.Format(n) != petri.Format(atm.New().Net) {
		t.Fatal("examples/nets/atmserver.pn out of sync with internal/atm.New")
	}
	if n.NumTransitions() != 49 || n.NumPlaces() != 41 || len(n.FreeChoiceSets()) != 11 {
		t.Fatalf("shape = %d/%d/%d", n.NumTransitions(), n.NumPlaces(), len(n.FreeChoiceSets()))
	}
	s, err := Solve(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cycles) != 56 {
		t.Fatalf("cycles = %d, want 56", len(s.Cycles))
	}
}

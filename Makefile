# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test bench bench-json cover fuzz examples atmbench clean

all: build test

build:
	go build ./...
	go vet ./...

test:
	go test ./...

# Regenerates every paper table/figure plus the ablations.
bench:
	go test -bench=. -benchmem ./...

# Engine throughput and cache-effectiveness report: the example nets plus
# a generated 50-net corpus, three passes through one engine (so the
# second and third hit the cache), with a serial rerun for the speedup
# ratio. Writes BENCH_engine.json.
bench-json:
	go run ./cmd/qssd -gen 50 -repeat 3 -workers 4 -compare-serial \
		-o BENCH_engine.json examples/nets/*.pn
	@grep -E '"(nets_per_sec|hit_rate|speedup)"' BENCH_engine.json

cover:
	go test -coverprofile=cover.out ./...
	go tool cover -func=cover.out | tail -1

fuzz:
	go test -fuzz='FuzzParse$$' -fuzztime=30s ./internal/petri/
	go test -fuzz='FuzzParsePN$$' -fuzztime=30s ./internal/petri/

examples:
	go run ./examples/quickstart
	go run ./examples/multirate
	go run ./examples/pipeline
	go run ./examples/multitask
	go run ./examples/protocol
	go run ./examples/atmserver

atmbench:
	go run ./cmd/atmbench

clean:
	rm -f cover.out test_output.txt bench_output.txt BENCH_engine.json

# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test bench cover fuzz examples atmbench clean

all: build test

build:
	go build ./...
	go vet ./...

test:
	go test ./...

# Regenerates every paper table/figure plus the ablations.
bench:
	go test -bench=. -benchmem ./...

cover:
	go test -coverprofile=cover.out ./...
	go tool cover -func=cover.out | tail -1

fuzz:
	go test -fuzz=FuzzParse -fuzztime=30s ./internal/petri/

examples:
	go run ./examples/quickstart
	go run ./examples/multirate
	go run ./examples/pipeline
	go run ./examples/multitask
	go run ./examples/protocol
	go run ./examples/atmserver

atmbench:
	go run ./cmd/atmbench

clean:
	rm -f cover.out test_output.txt bench_output.txt

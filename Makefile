# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test bench bench-json bench-serve bench-coord phase-baseline phase-gate cover fuzz examples atmbench clean

all: build test

build:
	go build ./...
	go vet ./...

test:
	go test ./...

# Regenerates every paper table/figure plus the ablations.
bench:
	go test -bench=. -benchmem ./...

# Engine throughput and cache-effectiveness report: the example nets plus
# a generated 50-net corpus, one cold pass and two warm passes through one
# engine, with a serial rerun of the cold pass for the speedup ratio.
# Writes BENCH_engine.json (cold and warm throughput are reported
# separately; see docs/TRACING.md) and the per-job checkpoint journal
# BENCH_journal.jsonl (crash-safe resume evidence; CI uploads both),
# compacted to one line per canonical hash before upload.
bench-json:
	rm -f BENCH_journal.jsonl
	go run ./cmd/qssd -gen 50 -repeat 3 -workers 4 -compare-serial \
		-mk 9,10 -margin \
		-journal BENCH_journal.jsonl \
		-o BENCH_engine.json examples/nets/*.pn
	go run ./cmd/qssd -journal BENCH_journal.jsonl -compact
	@grep -E '"(cold_nets_per_sec|warm_nets_per_sec|hit_rate|speedup|gomaxprocs)"' BENCH_engine.json
	@grep -m1 -E '"(deadline|mk)"' BENCH_engine.json

# Service throughput report (see docs/SERVICE.md): boot the sharded HTTP
# service on a free port, drive the same corpus through it over HTTP (one
# cold pass + two warm passes), and write BENCH_service.json with
# requests/sec and the cold-miss / warm-hit cache split. The server is
# shut down gracefully (SIGINT -> drain + journal flush) afterwards.
bench-serve:
	go build -o /tmp/qssd_bench ./cmd/qssd
	rm -rf /tmp/qssd_bench_journal /tmp/qssd_serve.log && mkdir -p /tmp/qssd_bench_journal
	/tmp/qssd_bench serve -addr 127.0.0.1:0 -shards 2 -workers 4 \
		-journal-dir /tmp/qssd_bench_journal > /tmp/qssd_serve.log 2>&1 & \
	SRV=$$!; \
	ADDR=""; \
	for i in $$(seq 1 100); do \
		ADDR=$$(sed -n 's|^qssd: serving on \(http://[^ ]*\).*|\1|p' /tmp/qssd_serve.log); \
		[ -n "$$ADDR" ] && break; sleep 0.1; \
	done; \
	[ -n "$$ADDR" ] || { cat /tmp/qssd_serve.log; kill $$SRV 2>/dev/null; echo "bench-serve: server never came up"; exit 1; }; \
	/tmp/qssd_bench -server $$ADDR -gen 50 -repeat 3 -workers 4 \
		-o BENCH_service.json examples/nets/*.pn || { kill -INT $$SRV; exit 1; }; \
	kill -INT $$SRV; wait $$SRV
	@grep -E '"(requests_per_sec|cold_nets_per_sec|warm_nets_per_sec|server_url)"' BENCH_service.json
	@grep -E '"(cold_cache|warm_cache)"' BENCH_service.json

# Coordinator availability report (see docs/SERVICE.md): boot three
# single-shard backends and a coordinator in front, drive the phase
# corpus through the coordinator, SIGKILL one backend two seconds into
# the run, and write BENCH_coord.json. Availability should stay 1.0 and
# the coordinator's failover counter nonzero — the kill lands mid-batch
# and the survivors absorb the dead host's prefix range. Everything is
# shut down gracefully (SIGINT -> drain) afterwards; the killed backend
# is reaped with `wait || true` since SIGKILL is the point.
bench-coord:
	go build -o /tmp/qssd_bench ./cmd/qssd
	rm -f /tmp/qssd_coord.log /tmp/qssd_b0.log /tmp/qssd_b1.log /tmp/qssd_b2.log /tmp/qssd_coord.jsonl
	set -e; \
	PIDS=""; ADDRS=""; \
	for i in 0 1 2; do \
		/tmp/qssd_bench serve -addr 127.0.0.1:0 -shards 1 -workers 2 \
			> /tmp/qssd_b$$i.log 2>&1 & \
		PIDS="$$PIDS $$!"; \
	done; \
	for i in 0 1 2; do \
		A=""; \
		for t in $$(seq 1 100); do \
			A=$$(sed -n 's|^qssd: serving on \(http://[^ ]*\).*|\1|p' /tmp/qssd_b$$i.log); \
			[ -n "$$A" ] && break; sleep 0.1; \
		done; \
		[ -n "$$A" ] || { cat /tmp/qssd_b$$i.log; kill $$PIDS 2>/dev/null; echo "bench-coord: backend $$i never came up"; exit 1; }; \
		ADDRS="$$ADDRS,$$A"; \
	done; \
	ADDRS=$${ADDRS#,}; \
	/tmp/qssd_bench coord -addr 127.0.0.1:0 -backends "$$ADDRS" \
		-journal /tmp/qssd_coord.jsonl -probe-interval 100ms -breaker-threshold 2 \
		> /tmp/qssd_coord.log 2>&1 & \
	CRD=$$!; \
	COORD=""; \
	for t in $$(seq 1 100); do \
		COORD=$$(sed -n 's|^qssd: coordinating on \(http://[^ ]*\).*|\1|p' /tmp/qssd_coord.log); \
		[ -n "$$COORD" ] && break; sleep 0.1; \
	done; \
	[ -n "$$COORD" ] || { cat /tmp/qssd_coord.log; kill $$PIDS $$CRD 2>/dev/null; echo "bench-coord: coordinator never came up"; exit 1; }; \
	VICTIM=$$(echo $$PIDS | awk '{print $$1}'); \
	( sleep 1; kill -9 $$VICTIM 2>/dev/null ) & \
	/tmp/qssd_bench -server $$COORD -gen 200 -gen-seed 1 -repeat 3 -workers 4 -mk 9,10 -margin \
		-o BENCH_coord.json examples/nets/*.pn || { kill -INT $$CRD $$PIDS 2>/dev/null; exit 1; }; \
	kill -INT $$CRD; wait $$CRD; \
	for p in $$PIDS; do kill -INT $$p 2>/dev/null || true; done; wait || true
	@grep -E '"(availability|latency_p50_ms|latency_p99_ms|requests_per_sec)"' BENCH_coord.json
	@grep -oE '"(failovers|retries|degraded_serves|unavailable)": *[0-9]+' BENCH_coord.json

# Phase-regression gate (see docs/TRACING.md): run a small fixed traced
# corpus and compare each phase's total time (>2x fails) and count
# (>1.25x fails) against the committed BENCH_phases.json. phase-baseline
# refreshes the committed baseline from the same corpus.
PHASE_CORPUS = -gen 20 -gen-seed 1 -workers 4 -mk 9,10 -margin
phase-gate:
	go run ./cmd/qssd $(PHASE_CORPUS) -o /tmp/phasegate_run.json
	go run ./cmd/phasegate -report /tmp/phasegate_run.json -baseline BENCH_phases.json

phase-baseline:
	go run ./cmd/qssd $(PHASE_CORPUS) -o /tmp/phasegate_run.json
	go run ./cmd/phasegate -report /tmp/phasegate_run.json -baseline BENCH_phases.json -write

cover:
	go test -coverprofile=cover.out ./...
	go tool cover -func=cover.out | tail -1

fuzz:
	go test -fuzz='FuzzParse$$' -fuzztime=30s ./internal/petri/
	go test -fuzz='FuzzParsePN$$' -fuzztime=30s ./internal/petri/
	go test -fuzz='FuzzFarkasLadder$$' -fuzztime=30s ./internal/linalg/
	go test -fuzz='FuzzRestrictTInvariants$$' -fuzztime=30s ./internal/invariant/
	go test -fuzz='FuzzWeaklyHard$$' -fuzztime=30s ./internal/timing/
	go test -fuzz='FuzzFingerprintSoundness$$' -fuzztime=30s ./internal/core/

examples:
	go run ./examples/quickstart
	go run ./examples/multirate
	go run ./examples/pipeline
	go run ./examples/multitask
	go run ./examples/protocol
	go run ./examples/atmserver

atmbench:
	go run ./cmd/atmbench

clean:
	rm -f cover.out test_output.txt bench_output.txt BENCH_engine.json BENCH_journal.jsonl BENCH_service.json BENCH_coord.json

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"fcpn"
	"fcpn/internal/engine"
	"fcpn/internal/petri"
	"fcpn/internal/server"
)

// clientConfig drives a corpus through a running qssd service.
type clientConfig struct {
	BaseURL string
	Workers int // concurrent requests (0 = GOMAXPROCS)
	Repeat  int // pass count: 1 cold + Repeat-1 warm
	Out     string
}

// runClient is the HTTP twin of the batch path: the same corpus, the
// same report document, but every analysis is a POST /v1/analyze against
// a running service. The cold/warm split measures the *service's*
// content-addressed dedup — the warm passes should come back marked
// "hit" without touching the engines.
func runClient(cfg clientConfig, sources []string, nets []*petri.Net, stdout io.Writer) error {
	base := strings.TrimRight(cfg.BaseURL, "/")
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	texts := make([]string, len(nets))
	for i, n := range nets {
		texts[i] = fcpn.Format(n)
	}
	hc := &http.Client{Timeout: 5 * time.Minute}

	if err := waitReady(hc, base, 10*time.Second); err != nil {
		return err
	}

	final := make([]netResult, len(nets))
	// pass posts every net once with `workers` concurrent senders,
	// tallying the service's cache markers; record also fills final.
	pass := func(tally map[string]int, record bool) (time.Duration, error) {
		var mu sync.Mutex
		var wg sync.WaitGroup
		var firstErr error
		sem := make(chan struct{}, workers)
		t0 := time.Now()
		for i := range nets {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				tReq := time.Now()
				ar, err := postAnalyze(hc, base, texts[i])
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("%s: %w", sources[i], err)
					}
					return
				}
				if ar.Cache != "" {
					tally[ar.Cache]++
				}
				if !record {
					return
				}
				final[i] = netResult{
					Source:    sources[i],
					ElapsedMS: msOf(time.Since(tReq)),
					Status:    ar.Status,
					Error:     ar.Error,
					Cache:     ar.Cache,
				}
				if len(ar.Report) > 0 {
					rep := new(engine.NetReport)
					if jerr := json.Unmarshal(ar.Report, rep); jerr == nil {
						final[i].Report = rep
					}
				}
			}(i)
		}
		wg.Wait()
		return time.Since(t0), firstErr
	}

	coldCache := map[string]int{}
	cold, err := pass(coldCache, true)
	if err != nil {
		return err
	}
	warmCache := map[string]int{}
	var warm time.Duration
	for r := 1; r < cfg.Repeat; r++ {
		d, err := pass(warmCache, false)
		if err != nil {
			return err
		}
		warm += d
	}

	rep := batchReport{
		Workers:       workers,
		Repeat:        cfg.Repeat,
		Nets:          len(nets),
		Jobs:          len(nets) * cfg.Repeat,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		StatusCounts:  map[string]int{},
		ColdElapsedMS: msOf(cold),
		ElapsedMS:     msOf(cold + warm),
		ServerURL:     cfg.BaseURL,
		ColdCache:     coldCache,
		Results:       final,
	}
	if cold > 0 {
		rep.ColdNetsPerSec = float64(len(nets)) / cold.Seconds()
	}
	if cfg.Repeat > 1 && warm > 0 {
		rep.WarmElapsedMS = msOf(warm)
		rep.WarmNetsPerSec = float64(len(nets)*(cfg.Repeat-1)) / warm.Seconds()
		rep.WarmCache = warmCache
	}
	if total := cold + warm; total > 0 {
		rep.RequestsPerSec = float64(len(nets)*cfg.Repeat) / total.Seconds()
	}
	for i := range final {
		rep.StatusCounts[final[i].Status]++
	}
	if raw, err := getStats(hc, base); err == nil {
		rep.ServerStats = raw
	}
	return writeReport(&rep, cfg.Out, stdout)
}

// waitReady polls GET /readyz until the service answers 200 or the
// budget runs out, so "start the server, point the client at it" needs
// no sleep choreography in scripts.
func waitReady(hc *http.Client, base string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	var last error
	for {
		resp, err := hc.Get(base + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			last = fmt.Errorf("readyz: %s", resp.Status)
		} else {
			last = err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server %s not ready after %v: %w", base, budget, last)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// postAnalyze submits one net, honouring 429 backpressure: a refused
// request sleeps the service's Retry-After hint and goes again, so a
// client with more concurrency than the server's admission window
// degrades to the server's pace instead of failing.
func postAnalyze(hc *http.Client, base, text string) (*server.AnalyzeResponse, error) {
	for {
		resp, err := hc.Post(base+"/v1/analyze", "text/plain", strings.NewReader(text))
		if err != nil {
			return nil, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		ar := new(server.AnalyzeResponse)
		if err := json.Unmarshal(body, ar); err != nil {
			return nil, fmt.Errorf("%s: bad response body %q", resp.Status, body)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			wait := time.Duration(ar.RetryAfterSec) * time.Second
			if wait <= 0 {
				wait = 50 * time.Millisecond
			}
			time.Sleep(wait)
			continue
		}
		return ar, nil
	}
}

func getStats(hc *http.Client, base string) (json.RawMessage, error) {
	resp, err := hc.Get(base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stats: %s", resp.Status)
	}
	return io.ReadAll(resp.Body)
}

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"fcpn"
	"fcpn/internal/coord"
	"fcpn/internal/engine"
	"fcpn/internal/petri"
	"fcpn/internal/server"
)

// clientConfig drives a corpus through a running qssd service.
type clientConfig struct {
	BaseURL string
	Workers int // concurrent requests (0 = GOMAXPROCS)
	Repeat  int // pass count: 1 cold + Repeat-1 warm
	Out     string
}

// Client-side retry policy: a 429 sleeps the service's Retry-After hint
// (jittered, so blocked senders do not stampede back in lockstep);
// transient transport errors and 503-draining back off exponentially.
// Both are bounded by an attempt count and a total wall-clock budget —
// a client must degrade loudly, not spin forever against a dead or
// permanently saturated service.
const (
	clientRetryAttempts = 8
	clientRetryBudget   = 2 * time.Minute
)

// runClient is the HTTP twin of the batch path: the same corpus, the
// same report document, but every analysis is a POST /v1/analyze against
// a running service or coordinator. The cold/warm split measures the
// service's content-addressed dedup — the warm passes should come back
// marked "hit" without touching the engines. Availability and latency
// percentiles are tallied over every request, which is what
// `make bench-coord` reads after killing a backend mid-run.
func runClient(cfg clientConfig, sources []string, nets []*petri.Net, stdout io.Writer) error {
	base := strings.TrimRight(cfg.BaseURL, "/")
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	texts := make([]string, len(nets))
	for i, n := range nets {
		texts[i] = fcpn.Format(n)
	}
	hc := &http.Client{Timeout: 5 * time.Minute}
	bo := coord.NewBackoff(50*time.Millisecond, 2*time.Second, 1)

	if err := coord.WaitReady(context.Background(), hc, base, 10*time.Second); err != nil {
		return err
	}

	final := make([]netResult, len(nets))
	var latMu sync.Mutex
	var latencies []time.Duration
	var okRequests, totalRequests int
	// pass posts every net once with `workers` concurrent senders,
	// tallying the service's cache markers; record also fills final.
	pass := func(tally map[string]int, record bool) (time.Duration, error) {
		var mu sync.Mutex
		var wg sync.WaitGroup
		var firstErr error
		sem := make(chan struct{}, workers)
		t0 := time.Now()
		for i := range nets {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				tReq := time.Now()
				code, ar, err := postAnalyze(hc, base, texts[i], bo)
				elapsed := time.Since(tReq)
				latMu.Lock()
				latencies = append(latencies, elapsed)
				totalRequests++
				if err == nil && code == http.StatusOK {
					okRequests++
				}
				latMu.Unlock()
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("%s: %w", sources[i], err)
					}
					return
				}
				if ar.Cache != "" {
					tally[ar.Cache]++
				}
				if !record {
					return
				}
				final[i] = netResult{
					Source:    sources[i],
					ElapsedMS: msOf(elapsed),
					Status:    ar.Status,
					Error:     ar.Error,
					Cache:     ar.Cache,
				}
				if len(ar.Report) > 0 {
					rep := new(engine.NetReport)
					if jerr := json.Unmarshal(ar.Report, rep); jerr == nil {
						final[i].Report = rep
					}
				}
			}(i)
		}
		wg.Wait()
		return time.Since(t0), firstErr
	}

	coldCache := map[string]int{}
	cold, err := pass(coldCache, true)
	if err != nil {
		return err
	}
	warmCache := map[string]int{}
	var warm time.Duration
	for r := 1; r < cfg.Repeat; r++ {
		d, err := pass(warmCache, false)
		if err != nil {
			return err
		}
		warm += d
	}

	rep := batchReport{
		Workers:       workers,
		Repeat:        cfg.Repeat,
		Nets:          len(nets),
		Jobs:          len(nets) * cfg.Repeat,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		StatusCounts:  map[string]int{},
		ColdElapsedMS: msOf(cold),
		ElapsedMS:     msOf(cold + warm),
		ServerURL:     cfg.BaseURL,
		ColdCache:     coldCache,
		Results:       final,
	}
	if cold > 0 {
		rep.ColdNetsPerSec = float64(len(nets)) / cold.Seconds()
	}
	if cfg.Repeat > 1 && warm > 0 {
		rep.WarmElapsedMS = msOf(warm)
		rep.WarmNetsPerSec = float64(len(nets)*(cfg.Repeat-1)) / warm.Seconds()
		rep.WarmCache = warmCache
	}
	if total := cold + warm; total > 0 {
		rep.RequestsPerSec = float64(len(nets)*cfg.Repeat) / total.Seconds()
	}
	if totalRequests > 0 {
		rep.Availability = float64(okRequests) / float64(totalRequests)
		rep.LatencyP50MS = msOf(percentile(latencies, 50))
		rep.LatencyP99MS = msOf(percentile(latencies, 99))
	}
	for i := range final {
		rep.StatusCounts[final[i].Status]++
	}
	if raw, err := getStats(hc, base); err == nil {
		rep.ServerStats = raw
	}
	return writeReport(&rep, cfg.Out, stdout)
}

// percentile returns the p-th percentile (nearest-rank) of the samples.
func percentile(samples []time.Duration, p int) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := (p*len(sorted) + 99) / 100 // ceil(p/100 * n)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// postAnalyze submits one net with bounded, seeded-jittered retries. A
// 429 sleeps the service's Retry-After hint plus jitter; transient
// transport errors (connection refused/reset, torn bodies) and
// 503-draining back off exponentially — a connection reset mid-rolling-
// restart is a retry, not a batch failure. Terminal statuses (400, 413,
// 422, ...) return the envelope for the caller to record. The attempt
// count and wall-clock budget bound the loop: past them the last error
// (or last refusal envelope) is returned.
func postAnalyze(hc *http.Client, base, text string, bo *coord.Backoff) (int, *server.AnalyzeResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), clientRetryBudget)
	defer cancel()
	var lastErr error
	var lastCode int
	var lastEnv *server.AnalyzeResponse
retry:
	for attempt := 0; attempt < clientRetryAttempts; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/analyze", strings.NewReader(text))
		if err != nil {
			return 0, nil, err
		}
		req.Header.Set("Content-Type", "text/plain")
		resp, err := hc.Do(req)
		if err != nil {
			if !coord.Transient(err) {
				return 0, nil, err // cancelled / budget exhausted
			}
			lastErr, lastEnv, lastCode = err, nil, 0
			if serr := coord.SleepCtx(ctx, bo.Delay(attempt)); serr != nil {
				break
			}
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil { // torn mid-body: transient
			lastErr, lastEnv, lastCode = rerr, nil, resp.StatusCode
			if serr := coord.SleepCtx(ctx, bo.Delay(attempt)); serr != nil {
				break
			}
			continue
		}
		ar := new(server.AnalyzeResponse)
		if err := json.Unmarshal(body, ar); err != nil {
			lastErr, lastEnv, lastCode = fmt.Errorf("%s: bad response body %q", resp.Status, body), nil, resp.StatusCode
			if serr := coord.SleepCtx(ctx, bo.Delay(attempt)); serr != nil {
				break
			}
			continue
		}
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			wait := time.Duration(ar.RetryAfterSec) * time.Second
			if ra := coord.RetryAfter(resp); ra > wait {
				wait = ra
			}
			if wait <= 0 {
				wait = 50 * time.Millisecond
			}
			lastErr, lastEnv, lastCode = nil, ar, resp.StatusCode
			if serr := coord.SleepCtx(ctx, bo.Honour(wait)); serr != nil {
				break retry
			}
			continue
		case http.StatusServiceUnavailable:
			lastErr, lastEnv, lastCode = nil, ar, resp.StatusCode
			if serr := coord.SleepCtx(ctx, bo.Delay(attempt)); serr != nil {
				break retry
			}
			continue
		}
		return resp.StatusCode, ar, nil
	}
	if lastEnv != nil {
		return lastCode, lastEnv, nil // the refusal outlived the budget: report it
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("retry budget exhausted")
	}
	return lastCode, nil, fmt.Errorf("after %d attempts: %w", clientRetryAttempts, lastErr)
}

func getStats(hc *http.Client, base string) (json.RawMessage, error) {
	resp, err := hc.Get(base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stats: %s", resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// Command qssd is the front end of the concurrent analysis engine. It
// runs in four modes:
//
//   - Batch (default): load a corpus of nets — from a manifest file,
//     from .pn files on the command line, or generated on the fly —
//     analyse them concurrently through the shared content-addressed
//     cache, and write one JSON report with per-net results, per-net
//     phase traces and timings plus the engine's cache, worker and
//     lifetime-trace counters.
//   - Service ("qssd serve"): expose the engine as a long-running
//     sharded HTTP/JSON service (see docs/SERVICE.md).
//   - Coordinator ("qssd coord"): the fault-tolerant multi-host front
//     door — route requests across N serve hosts by canonical-hash
//     prefix with circuit breakers, hedged retries, journal reissue
//     and degraded stale serving (see docs/SERVICE.md).
//   - Client ("qssd -server URL"): drive the corpus through a running
//     service (or coordinator) instead of an in-process engine and emit
//     the same JSON batch report, plus request throughput, availability
//     and latency percentiles.
//   - Merge ("qssd -merge"): fold several journals (e.g. the per-shard
//     journals a service writes) into one compacted journal.
//
// Usage:
//
//	qssd [-manifest list.txt] [-gen N] [-gen-seed S] [-workers W]
//	     [-repeat R] [-compare-serial] [-cpuprofile f] [-trace f]
//	     [-journal f.jsonl] [-resume] [-job-timeout d] [-submit-window W]
//	     [-server URL] [-o report.json] [file.pn ...]
//	qssd -merge -journal out.jsonl in1.jsonl [in2.jsonl ...]
//	qssd serve [-addr host:port] [-shards N] [-journal-dir dir]
//	     [-workers W] [-submit-window W] [-job-timeout d]
//	qssd coord -backends url1,url2[,...] [-addr host:port] [-journal f]
//	     [-merge-journals glob] [-hedge-after d] [-retries N]
//
// A manifest is a text file with one .pn path per line ('#' comments);
// relative paths resolve against the manifest's directory.
//
// Robustness flags: -job-timeout bounds each net's analysis (past it the
// job is cancelled and reported "timeout" with its partial report);
// -submit-window bounds how many jobs are in flight at once (the
// engine's backpressure); -journal appends one JSON line per completed
// job so a killed run can be picked up with -resume, which re-analyses
// only the nets whose canonical hash has no "ok" journal entry and
// quarantines the ones journalled as panicked.
//
// The corpus runs as one *cold* pass (every net analysed once against an
// empty cache) followed by R-1 *warm* passes against the now-populated
// cache, all through one engine. The two regimes are reported separately
// — cold_nets_per_sec measures analysis throughput, warm_nets_per_sec
// measures cache-hit throughput — because averaging them produced a
// meaningless blended figure. -compare-serial reruns only the cold pass
// on a fresh one-worker engine; speedup is the cold-pass ratio, the only
// one where the workers have real work to parallelise. gomaxprocs and
// num_cpu are recorded so a ~1.0 speedup on a single-CPU host reads as
// the hardware bound it is, not an engine defect.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"time"

	"fcpn/internal/engine"
	"fcpn/internal/journal"
	"fcpn/internal/petri"
	"fcpn/internal/timing"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qssd:", err)
		os.Exit(1)
	}
}

// run is the testable core of the command: it dispatches between the
// service modes ("serve" and "coord" subcommands) and the flag-driven
// batch / client / merge modes.
func run(args []string, stdout io.Writer) error {
	if len(args) > 0 {
		switch args[0] {
		case "serve":
			return runServe(args[1:], stdout)
		case "coord":
			return runCoord(args[1:], stdout)
		}
	}
	return runBatch(args, stdout)
}

func runBatch(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("qssd", flag.ContinueOnError)
	manifest := fs.String("manifest", "", "text file listing .pn files, one per line")
	gen := fs.Int("gen", 0, "generate N schedulable pipeline nets instead of/alongside files")
	genSeed := fs.Uint64("gen-seed", 1, "first seed for -gen (seeds S..S+N-1)")
	workers := fs.Int("workers", 0, "engine worker-pool size (0 = GOMAXPROCS)")
	repeat := fs.Int("repeat", 1, "analyse the corpus this many times through one engine (pass 1 cold, the rest warm)")
	compareSerial := fs.Bool("compare-serial", false, "also run the cold pass on one worker and report the speedup")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the batch to this file")
	execTrace := fs.String("trace", "", "write a runtime/trace execution trace of the batch to this file")
	journalPath := fs.String("journal", "", "append one JSON line per completed job to this file (crash-safe checkpoint)")
	resume := fs.Bool("resume", false, "skip nets already journalled \"ok\" (requires -journal)")
	compact := fs.Bool("compact", false, "rewrite -journal to one line per canonical hash (later entries win) and exit")
	merge := fs.Bool("merge", false, "fold the positional journal files into -journal (later files win) and exit")
	jobTimeout := fs.Duration("job-timeout", 0, "per-net analysis deadline (0 = none)")
	submitWindow := fs.Int("submit-window", 0, "max jobs in flight at once (0 = 2x workers)")
	mkFlag := fs.String("mk", "", "check each schedulable net against the weakly-hard (m,k) constraint, e.g. -mk 9,10")
	marginFlag := fs.Bool("margin", false, "with -mk: search per-net overload margins (burst and overrun)")
	serverURL := fs.String("server", "", "drive the corpus through a running qssd service at this base URL instead of an in-process engine")
	out := fs.String("o", "", "write the JSON report to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateEngineFlags(*workers, *submitWindow, *jobTimeout); err != nil {
		return err
	}
	if *repeat < 1 {
		*repeat = 1
	}
	if *resume && *journalPath == "" {
		return fmt.Errorf("-resume requires -journal")
	}
	if *compact {
		if *journalPath == "" {
			return fmt.Errorf("-compact requires -journal")
		}
		before, after, err := journal.Compact(*journalPath)
		if err != nil {
			return fmt.Errorf("compacting journal: %w", err)
		}
		fmt.Fprintf(stdout, "compacted %s: %d lines -> %d entries\n", *journalPath, before, after)
		return nil
	}
	if *merge {
		if *journalPath == "" {
			return fmt.Errorf("-merge requires -journal (the output file)")
		}
		inputs := fs.Args()
		if len(inputs) == 0 {
			return fmt.Errorf("-merge requires input journal files as arguments")
		}
		lines, entries, err := journal.Merge(*journalPath, inputs)
		if err != nil {
			return fmt.Errorf("merging journals: %w", err)
		}
		fmt.Fprintf(stdout, "merged %d journals: %d lines -> %d entries\n", len(inputs), lines, entries)
		return nil
	}

	sources, nets, err := loadCorpus(*manifest, fs.Args(), *gen, *genSeed)
	if err != nil {
		return err
	}
	if len(nets) == 0 {
		return fmt.Errorf("empty corpus: give .pn files, -manifest, or -gen")
	}

	if *serverURL != "" {
		return runClient(clientConfig{
			BaseURL: *serverURL,
			Workers: *workers,
			Repeat:  *repeat,
			Out:     *out,
		}, sources, nets, stdout)
	}

	var prior map[string]journal.Entry
	if *resume {
		if prior, err = journal.Read(*journalPath); err != nil {
			return fmt.Errorf("reading journal: %w", err)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *execTrace != "" {
		f, err := os.Create(*execTrace)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			return err
		}
		defer rtrace.Stop()
	}

	var topts engine.TimingOptions
	if *mkFlag != "" {
		c, err := timing.Parse(*mkFlag)
		if err != nil {
			return err
		}
		topts = engine.TimingOptions{MK: c, Margin: *marginFlag}
	} else if *marginFlag {
		return fmt.Errorf("-margin requires -mk")
	}

	// One engine for every pass; the cold pass runs alone so its timings
	// are not diluted by cache-hit jobs (and its speedup is measured
	// against real work).
	e := engine.New(engine.Config{
		Workers:      *workers,
		SubmitWindow: *submitWindow,
		JobTimeout:   *jobTimeout,
		Timing:       topts,
	})

	// Split the corpus against the journal: nets journalled "ok" are
	// rehydrated without re-analysis; journalled panics re-seed the
	// engine's quarantine so the poisoned net is refused, not re-run.
	final := make([]netResult, len(nets))
	var todo []int
	for i, n := range nets {
		hash := n.CanonicalHash()
		if ent, ok := prior[hash]; ok {
			switch ent.Status {
			case string(engine.StatusOK), statusSkippedResume:
				final[i] = netResult{
					Source: sources[i],
					Status: statusSkippedResume,
					Report: ent.Report,
				}
				continue
			case string(engine.StatusPanicked), string(engine.StatusQuarantined):
				e.Quarantine(hash, "journalled "+ent.Status+": "+ent.Error)
			}
		}
		todo = append(todo, i)
	}

	var jw *journal.Writer
	if *journalPath != "" {
		if jw, err = journal.Open(*journalPath); err != nil {
			return err
		}
	}

	todoNets := make([]*petri.Net, len(todo))
	for j, i := range todo {
		todoNets[j] = nets[i]
	}
	t0 := time.Now()
	// The streaming form journals each job the moment it completes, so a
	// kill mid-batch loses at most the in-flight jobs.
	err = e.AnalyzeEach(todoNets, func(j int, r engine.Result) {
		i := todo[j]
		final[i] = netResult{
			Source:    sources[i],
			ElapsedMS: msOf(r.Elapsed),
			Trace:     r.Trace,
			Report:    r.Report,
			Status:    string(r.Status),
		}
		if r.Err != nil {
			final[i].Error = r.Err.Error()
		}
		jw.Record(journal.Entry{
			Hash:      r.Report.Hash,
			Source:    sources[i],
			Status:    string(r.Status),
			Error:     final[i].Error,
			ElapsedMS: msOf(r.Elapsed),
			Report:    r.Report,
		})
	})
	if err != nil {
		return err
	}
	cold := time.Since(t0)
	if jw != nil {
		if err := jw.Close(); err != nil {
			return fmt.Errorf("writing journal: %w", err)
		}
	}
	// Warm passes rerun only the nets analysed this run (resumed nets
	// have no cache entries to hit) and are not journalled: the journal
	// records corpus completion, not throughput probes.
	var warm time.Duration
	for r := 1; r < *repeat; r++ {
		tw := time.Now()
		if _, err := e.AnalyzeBatch(todoNets); err != nil {
			return err
		}
		warm += time.Since(tw)
	}
	snap := e.Stats()
	e.Close()

	rep := batchReport{
		Workers:       e.Workers(),
		Repeat:        *repeat,
		Nets:          len(nets),
		Jobs:          len(todo) * *repeat,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		StatusCounts:  map[string]int{},
		ColdElapsedMS: msOf(cold),
		ElapsedMS:     msOf(cold + warm),
		Stats:         &snap,
		Results:       final,
	}
	if rep.GoMaxProcs == 1 {
		rep.ParallelismWarning = "GOMAXPROCS=1: workers cannot run in parallel; speedup figures are hardware-bound at ~1.0"
	}
	if cold > 0 {
		rep.ColdNetsPerSec = float64(len(todo)) / cold.Seconds()
	}
	if *repeat > 1 && warm > 0 {
		rep.WarmElapsedMS = msOf(warm)
		rep.WarmNetsPerSec = float64(len(todo)*(*repeat-1)) / warm.Seconds()
	}
	for i := range final {
		rep.StatusCounts[final[i].Status]++
	}

	if *compareSerial {
		se := engine.New(engine.Config{Workers: 1, JobTimeout: *jobTimeout, Timing: topts})
		t0 := time.Now()
		if _, err := se.AnalyzeBatch(todoNets); err != nil {
			return err
		}
		serial := time.Since(t0)
		se.Close()
		rep.SerialColdElapsedMS = msOf(serial)
		if cold > 0 {
			rep.Speedup = float64(serial.Nanoseconds()) / float64(cold.Nanoseconds())
		}
	}

	return writeReport(&rep, *out, stdout)
}

// validateEngineFlags rejects negative engine sizing flags up front with
// a targeted message; the engine itself treats non-positive values as
// "use the default", which would silently mask a typo like -workers -4.
func validateEngineFlags(workers, submitWindow int, jobTimeout time.Duration) error {
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 = GOMAXPROCS), got %d", workers)
	}
	if submitWindow < 0 {
		return fmt.Errorf("-submit-window must be >= 0 (0 = 2x workers), got %d", submitWindow)
	}
	if jobTimeout < 0 {
		return fmt.Errorf("-job-timeout must be >= 0 (0 = none), got %v", jobTimeout)
	}
	return nil
}

// writeReport emits the batch report as indented JSON to path, or to
// stdout when path is empty.
func writeReport(rep *batchReport, path string, stdout io.Writer) error {
	w := stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Command qssd is the batch front end of the concurrent analysis engine:
// it loads a corpus of nets — from a manifest file, from .pn files on the
// command line, or generated on the fly — analyses them concurrently
// through the shared content-addressed cache, and writes one JSON report
// with per-net results and timings plus the engine's cache and worker
// counters.
//
// Usage:
//
//	qssd [-manifest list.txt] [-gen N] [-gen-seed S] [-workers W]
//	     [-repeat R] [-compare-serial] [-o report.json] [file.pn ...]
//
// A manifest is a text file with one .pn path per line ('#' comments);
// relative paths resolve against the manifest's directory. -repeat R
// analyses the corpus R times through one engine, so repeated manifests
// exercise the cache-hit path (the report's stats show the hit rate).
// -compare-serial reruns the corpus cold on a one-worker engine and
// reports the throughput ratio.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fcpn"
	"fcpn/internal/engine"
	"fcpn/internal/engine/stats"
	"fcpn/internal/netgen"
	"fcpn/internal/petri"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qssd:", err)
		os.Exit(1)
	}
}

// batchReport is the JSON document qssd emits (also the BENCH_engine.json
// payload). Per-net reports are deterministic; timings are not.
type batchReport struct {
	Workers    int     `json:"workers"`
	Repeat     int     `json:"repeat"`
	Nets       int     `json:"nets"`
	Jobs       int     `json:"jobs"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	NetsPerSec float64 `json:"nets_per_sec"`

	Stats stats.Snapshot `json:"stats"`

	// SerialElapsedMS and Speedup are present with -compare-serial: the
	// same corpus, cold, on a one-worker engine.
	SerialElapsedMS float64 `json:"serial_elapsed_ms,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`

	Results []netResult `json:"results"`
}

// netResult is one corpus entry: where the net came from, its
// deterministic report, and this run's wall-clock analysis time.
type netResult struct {
	Source    string            `json:"source"`
	ElapsedMS float64           `json:"elapsed_ms"`
	Report    *engine.NetReport `json:"report"`
}

// run is the testable core of the command.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("qssd", flag.ContinueOnError)
	manifest := fs.String("manifest", "", "text file listing .pn files, one per line")
	gen := fs.Int("gen", 0, "generate N schedulable pipeline nets instead of/alongside files")
	genSeed := fs.Uint64("gen-seed", 1, "first seed for -gen (seeds S..S+N-1)")
	workers := fs.Int("workers", 0, "engine worker-pool size (0 = GOMAXPROCS)")
	repeat := fs.Int("repeat", 1, "analyse the corpus this many times through one engine")
	compareSerial := fs.Bool("compare-serial", false, "also run the corpus cold on one worker and report the speedup")
	out := fs.String("o", "", "write the JSON report to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *repeat < 1 {
		*repeat = 1
	}

	sources, nets, err := loadCorpus(*manifest, fs.Args(), *gen, *genSeed)
	if err != nil {
		return err
	}
	if len(nets) == 0 {
		return fmt.Errorf("empty corpus: give .pn files, -manifest, or -gen")
	}

	// One engine for every pass: pass 2..R runs against the warm cache.
	jobs := make([]*petri.Net, 0, len(nets)**repeat)
	for r := 0; r < *repeat; r++ {
		jobs = append(jobs, nets...)
	}
	e := engine.New(engine.Config{Workers: *workers})
	t0 := time.Now()
	results := e.AnalyzeBatch(jobs)
	elapsed := time.Since(t0)
	snap := e.Stats()
	e.Close()

	rep := batchReport{
		Workers:    e.Workers(),
		Repeat:     *repeat,
		Nets:       len(nets),
		Jobs:       len(jobs),
		ElapsedMS:  float64(elapsed.Nanoseconds()) / 1e6,
		NetsPerSec: float64(len(jobs)) / elapsed.Seconds(),
		Stats:      snap,
	}
	// Report the first pass per net; later passes only differ in timing.
	for i := range nets {
		rep.Results = append(rep.Results, netResult{
			Source:    sources[i],
			ElapsedMS: float64(results[i].Elapsed.Nanoseconds()) / 1e6,
			Report:    results[i].Report,
		})
	}

	if *compareSerial {
		se := engine.New(engine.Config{Workers: 1})
		t0 := time.Now()
		se.AnalyzeBatch(jobs)
		serial := time.Since(t0)
		se.Close()
		rep.SerialElapsedMS = float64(serial.Nanoseconds()) / 1e6
		if elapsed > 0 {
			rep.Speedup = float64(serial.Nanoseconds()) / float64(elapsed.Nanoseconds())
		}
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&rep)
}

// loadCorpus assembles the net list: manifest entries, then positional
// files, then generated nets. Sources are the file paths, or "gen:<seed>"
// for generated nets.
func loadCorpus(manifest string, files []string, gen int, genSeed uint64) ([]string, []*petri.Net, error) {
	var sources []string
	var nets []*petri.Net
	add := func(path string) error {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		n, err := fcpn.Parse(f)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		sources = append(sources, path)
		nets = append(nets, n)
		return nil
	}

	if manifest != "" {
		f, err := os.Open(manifest)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		dir := filepath.Dir(manifest)
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			if !filepath.IsAbs(line) {
				line = filepath.Join(dir, line)
			}
			if err := add(line); err != nil {
				return nil, nil, err
			}
		}
		if err := sc.Err(); err != nil {
			return nil, nil, err
		}
	}
	for _, path := range files {
		if err := add(path); err != nil {
			return nil, nil, err
		}
	}
	for i := 0; i < gen; i++ {
		seed := genSeed + uint64(i)
		sources = append(sources, fmt.Sprintf("gen:%d", seed))
		nets = append(nets, netgen.RandomSchedulablePipeline(seed, netgen.DefaultConfig()))
	}
	return sources, nets, nil
}

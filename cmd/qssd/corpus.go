package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fcpn"
	"fcpn/internal/engine"
	"fcpn/internal/engine/stats"
	"fcpn/internal/netgen"
	"fcpn/internal/petri"
	"fcpn/internal/trace"
)

// statusSkippedResume is the qssd-level status of a net whose report was
// rehydrated from the journal instead of re-analysed. It extends the
// engine's JobStatus vocabulary in reports only.
const statusSkippedResume = "skipped-resume"

// batchReport is the JSON document qssd emits (also the BENCH_engine.json
// and BENCH_service.json payload). Per-net reports are deterministic;
// timings are not.
type batchReport struct {
	Workers int `json:"workers"`
	Repeat  int `json:"repeat"`
	Nets    int `json:"nets"`
	Jobs    int `json:"jobs"`
	// GoMaxProcs and NumCPU describe the host's real parallelism: with
	// GOMAXPROCS=1 every speedup is bounded by 1.0 regardless of worker
	// count.
	GoMaxProcs int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	// ParallelismWarning is set when the host gives the process a single
	// scheduling slot (GOMAXPROCS=1): every parallel-speedup figure below
	// is then bounded by 1.0 and says nothing about the engine.
	ParallelismWarning string `json:"parallelism_warning,omitempty"`

	// StatusCounts tallies per-net outcomes of the cold pass: "ok",
	// "timeout", "panicked", "quarantined", "error", plus
	// "skipped-resume" for nets rehydrated from a -resume journal.
	StatusCounts map[string]int `json:"status_counts"`

	// Cold pass: every distinct net once, empty cache.
	ColdElapsedMS  float64 `json:"cold_elapsed_ms"`
	ColdNetsPerSec float64 `json:"cold_nets_per_sec"`
	// Warm passes (-repeat > 1): the same corpus against the warm cache.
	WarmElapsedMS  float64 `json:"warm_elapsed_ms,omitempty"`
	WarmNetsPerSec float64 `json:"warm_nets_per_sec,omitempty"`
	// ElapsedMS is the total batch wall time (cold + warm passes).
	ElapsedMS float64 `json:"elapsed_ms"`

	// Stats is the in-process engine's lifetime snapshot (batch mode
	// only; in client mode the engine lives in the server).
	Stats *stats.Snapshot `json:"stats,omitempty"`

	// SerialColdElapsedMS and Speedup are present with -compare-serial:
	// the cold pass rerun on a fresh one-worker engine, and the ratio
	// serial/parallel of the two cold passes.
	SerialColdElapsedMS float64 `json:"serial_cold_elapsed_ms,omitempty"`
	Speedup             float64 `json:"speedup,omitempty"`

	// Client mode (-server): where the requests went, request throughput
	// over all passes, the service's cache-marker tallies split by pass
	// regime, and the service's own /v1/stats document. Availability is
	// the fraction of requests answered 200 after client-side retries —
	// with a coordinator absorbing backend faults it should stay 1.0
	// even with a host killed mid-batch (make bench-coord). The latency
	// percentiles are nearest-rank over every request of every pass.
	ServerURL      string          `json:"server_url,omitempty"`
	RequestsPerSec float64         `json:"requests_per_sec,omitempty"`
	Availability   float64         `json:"availability,omitempty"`
	LatencyP50MS   float64         `json:"latency_p50_ms,omitempty"`
	LatencyP99MS   float64         `json:"latency_p99_ms,omitempty"`
	ColdCache      map[string]int  `json:"cold_cache,omitempty"`
	WarmCache      map[string]int  `json:"warm_cache,omitempty"`
	ServerStats    json.RawMessage `json:"server_stats,omitempty"`

	Results []netResult `json:"results"`
}

// netResult is one corpus entry: where the net came from, its
// deterministic report, this run's cold-pass wall-clock analysis time and
// the cold pass's per-phase trace (whose non-detail phases sum to
// ElapsedMS modulo scheduling glue).
type netResult struct {
	Source    string            `json:"source"`
	ElapsedMS float64           `json:"elapsed_ms"`
	Trace     *trace.Report     `json:"trace,omitempty"`
	Report    *engine.NetReport `json:"report"`
	// Status is the job outcome ("ok", "timeout", "panicked",
	// "quarantined", "error", "skipped-resume"); Error carries the typed
	// job error's message for every non-ok status. In client mode the
	// service's cache marker ("hit"/"miss") rides along.
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
	Cache  string `json:"cache,omitempty"`
}

func msOf(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// loadCorpus assembles the net list: manifest entries, then positional
// files, then generated nets. Sources are the file paths, or "gen:<seed>"
// for generated nets.
func loadCorpus(manifest string, files []string, gen int, genSeed uint64) ([]string, []*petri.Net, error) {
	var sources []string
	var nets []*petri.Net
	add := func(path string) error {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		n, err := fcpn.Parse(f)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		sources = append(sources, path)
		nets = append(nets, n)
		return nil
	}

	if manifest != "" {
		f, err := os.Open(manifest)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		dir := filepath.Dir(manifest)
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			if !filepath.IsAbs(line) {
				line = filepath.Join(dir, line)
			}
			if err := add(line); err != nil {
				return nil, nil, err
			}
		}
		if err := sc.Err(); err != nil {
			return nil, nil, err
		}
	}
	for _, path := range files {
		if err := add(path); err != nil {
			return nil, nil, err
		}
	}
	for i := 0; i < gen; i++ {
		seed := genSeed + uint64(i)
		sources = append(sources, fmt.Sprintf("gen:%d", seed))
		nets = append(nets, netgen.RandomSchedulablePipeline(seed, netgen.DefaultConfig()))
	}
	return sources, nets, nil
}

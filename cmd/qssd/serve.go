package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fcpn/internal/engine"
	"fcpn/internal/server"
)

// serveSignals returns the channel shutdown signals arrive on and a
// release function. Tests swap it to drive a graceful shutdown without
// signalling the whole test process.
var serveSignals = func() (<-chan os.Signal, func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	return ch, func() { signal.Stop(ch) }
}

// runServe runs the long-lived sharded analysis service: bind, print the
// bound address (so -addr :0 is usable), serve until SIGINT/SIGTERM,
// then drain — stop accepting, let in-flight analyses finish, flush the
// shard journals — and exit.
func runServe(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("qssd serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	shards := fs.Int("shards", 1, "number of in-process shard engines (work partitions by canonical-hash prefix)")
	journalDir := fs.String("journal-dir", "", "directory for per-shard journals (shard-<i>.jsonl), replayed on boot")
	workers := fs.Int("workers", 0, "per-shard worker-pool size (0 = GOMAXPROCS)")
	submitWindow := fs.Int("submit-window", 0, "per-shard admission window: in-flight analyses before 429 (0 = 2x workers)")
	jobTimeout := fs.Duration("job-timeout", 0, "per-request analysis deadline (0 = none)")
	maxBody := fs.Int64("max-body", 0, "request body limit in bytes (0 = 1 MiB)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateEngineFlags(*workers, *submitWindow, *jobTimeout); err != nil {
		return err
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", *shards)
	}
	if len(fs.Args()) > 0 {
		return fmt.Errorf("serve takes no positional arguments, got %q", fs.Args())
	}

	srv, err := server.New(server.Config{
		Shards:     *shards,
		JournalDir: *journalDir,
		Engine: engine.Config{
			Workers:      *workers,
			SubmitWindow: *submitWindow,
			JobTimeout:   *jobTimeout,
		},
		MaxBodyBytes: *maxBody,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Close()
		return err
	}
	fmt.Fprintf(stdout, "qssd: serving on http://%s (%d shards)\n", ln.Addr(), srv.Shards())

	hs := &http.Server{Handler: srv.Handler()}
	sig, release := serveSignals()
	defer release()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-sig
		// Flip readiness first so load balancers stop routing here, then
		// stop the listener; in-flight HTTP requests get a grace period.
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}()

	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		srv.Close()
		return err
	}
	<-done
	// HTTP is down; Close waits for engine jobs and flushes journals.
	if err := srv.Close(); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "qssd: drained and flushed")
	return nil
}

package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"time"

	"fcpn/internal/coord"
)

// runCoord runs the fault-tolerant multi-host coordinator: an HTTP
// front door routing /v1/analyze and /v1/report to N `qssd serve`
// backends by canonical-hash prefix, with circuit breakers, hedged
// retries, journal reissue and stale degraded serving (internal/coord,
// docs/SERVICE.md). Lifecycle matches `qssd serve`: bind, print the
// bound address, serve until SIGINT/SIGTERM, drain, flush the journal.
func runCoord(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("qssd coord", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8090", "listen address (host:port; port 0 picks a free port)")
	backends := fs.String("backends", "", "comma-separated base URLs of the qssd serve hosts (required)")
	journalPath := fs.String("journal", "", "coordinator journal path; backend journals fold into it on boot")
	mergeGlob := fs.String("merge-journals", "", "glob of backend journal files folded on boot (reissue + stale cache), e.g. '/var/lib/qssd/*/shard-*.jsonl'")
	probeInterval := fs.Duration("probe-interval", 250*time.Millisecond, "per-backend /readyz probe cadence while healthy")
	breakerThreshold := fs.Int("breaker-threshold", 3, "consecutive failures before a backend's circuit breaker opens")
	retries := fs.Int("retries", 4, "attempts per request across hosts before degrading")
	retryBudget := fs.Duration("retry-budget", time.Minute, "total wall-clock budget of one request's retry loop")
	hedgeAfter := fs.Duration("hedge-after", 250*time.Millisecond, "fire a hedged request to the failover host past this latency (0 disables)")
	seed := fs.Uint64("seed", 1, "seed of the retry/hedge jitter stream")
	maxBody := fs.Int64("max-body", 0, "request body limit in bytes (0 = 1 MiB)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *backends == "" {
		return fmt.Errorf("-backends is required (comma-separated base URLs)")
	}
	if len(fs.Args()) > 0 {
		return fmt.Errorf("coord takes no positional arguments, got %q", fs.Args())
	}
	if *breakerThreshold < 1 || *retries < 1 {
		return fmt.Errorf("-breaker-threshold and -retries must be >= 1")
	}
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	var backendJournals []string
	if *mergeGlob != "" {
		matches, err := filepath.Glob(*mergeGlob)
		if err != nil {
			return fmt.Errorf("-merge-journals: %w", err)
		}
		backendJournals = matches
	}

	c, err := coord.New(coord.Config{
		Backends:         urls,
		ProbeInterval:    *probeInterval,
		BreakerThreshold: *breakerThreshold,
		RetryAttempts:    *retries,
		RetryBudget:      *retryBudget,
		HedgeAfter:       *hedgeAfter,
		Journal:          *journalPath,
		BackendJournals:  backendJournals,
		Seed:             *seed,
		MaxBodyBytes:     *maxBody,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		c.Close()
		return err
	}
	fmt.Fprintf(stdout, "qssd: coordinating on http://%s (%d backends)\n", ln.Addr(), len(urls))

	hs := &http.Server{Handler: c.Handler()}
	sig, release := serveSignals()
	defer release()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-sig
		c.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}()

	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		c.Close()
		return err
	}
	<-done
	if err := c.Close(); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "qssd: coordinator drained")
	return nil
}

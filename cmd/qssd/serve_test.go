package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	jnl "fcpn/internal/journal"
)

// syncBuf is a goroutine-safe Writer: runServe writes its address line
// from the serving goroutine while the test polls for it.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startServe boots "qssd serve" on an ephemeral port with a test-owned
// signal channel and returns the base URL, a stop function (signals and
// waits for graceful exit) and the output buffer.
func startServe(t *testing.T, extra ...string) (string, func() string, *syncBuf) {
	t.Helper()
	sig := make(chan os.Signal, 1)
	oldSignals := serveSignals
	serveSignals = func() (<-chan os.Signal, func()) { return sig, func() {} }
	t.Cleanup(func() { serveSignals = oldSignals })

	out := &syncBuf{}
	errc := make(chan error, 1)
	args := append([]string{"serve", "-addr", "127.0.0.1:0"}, extra...)
	go func() { errc <- run(args, out) }()

	deadline := time.Now().Add(10 * time.Second)
	var base string
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never printed its address; output: %q", out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if strings.HasPrefix(line, "qssd: serving on ") {
				base = strings.Fields(line)[3]
			}
		}
		select {
		case err := <-errc:
			t.Fatalf("serve exited early: %v (output %q)", err, out.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
	stop := func() string {
		sig <- os.Interrupt
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("serve shutdown: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("serve did not shut down")
		}
		return out.String()
	}
	return base, stop, out
}

// TestQssdServeClientRoundTrip is the CLI smoke of the tentpole: boot
// the service, drive a corpus through it with the HTTP client mode, and
// check the batch report splits cold misses from warm hits.
func TestQssdServeClientRoundTrip(t *testing.T) {
	dir := t.TempDir()
	base, stop, _ := startServe(t, "-shards", "2", "-journal-dir", dir)

	outPath := filepath.Join(dir, "report.json")
	var buf bytes.Buffer
	err := run([]string{"-server", base, "-gen", "4", "-gen-seed", "90", "-repeat", "2", "-workers", "2", "-o", outPath}, &buf)
	if err != nil {
		t.Fatalf("client run: %v", err)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep batchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.ServerURL != base {
		t.Errorf("server_url = %q, want %q", rep.ServerURL, base)
	}
	if rep.StatusCounts["ok"] != 4 || rep.Jobs != 8 {
		t.Fatalf("status counts %+v jobs %d", rep.StatusCounts, rep.Jobs)
	}
	if rep.ColdCache["miss"] != 4 {
		t.Errorf("cold cache = %+v, want 4 misses", rep.ColdCache)
	}
	if rep.WarmCache["hit"] != 4 {
		t.Errorf("warm cache = %+v, want 4 hits", rep.WarmCache)
	}
	if rep.RequestsPerSec <= 0 {
		t.Errorf("requests_per_sec = %v", rep.RequestsPerSec)
	}
	if len(rep.ServerStats) == 0 {
		t.Error("server_stats missing")
	}
	for _, r := range rep.Results {
		if r.Report == nil || !r.Report.Schedulable || r.Cache != "miss" {
			t.Fatalf("client result %+v lacks a cold-miss schedulable report", r.Source)
		}
	}

	output := stop()
	if !strings.Contains(output, "drained and flushed") {
		t.Errorf("shutdown output: %q", output)
	}
	// The service journalled the corpus; folding the shard journals must
	// recover all four analyses.
	shardFiles, err := filepath.Glob(filepath.Join(dir, "shard-*.jsonl"))
	if err != nil || len(shardFiles) != 2 {
		t.Fatalf("shard journals: %v %v", shardFiles, err)
	}
	merged := filepath.Join(dir, "merged.jsonl")
	var mbuf bytes.Buffer
	if err := run(append([]string{"-merge", "-journal", merged}, shardFiles...), &mbuf); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if !strings.Contains(mbuf.String(), "merged 2 journals:") {
		t.Errorf("merge summary: %q", mbuf.String())
	}
	entries, err := jnl.Read(merged)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("merged journal has %d entries, want 4", len(entries))
	}
	// And the merged journal resumes a local batch run: nothing re-runs.
	resumed := runJSON(t, "-gen", "4", "-gen-seed", "90", "-journal", merged, "-resume")
	if resumed.StatusCounts[statusSkippedResume] != 4 || resumed.Jobs != 0 {
		t.Fatalf("resume from merged service journal: %+v jobs=%d", resumed.StatusCounts, resumed.Jobs)
	}
}

func TestQssdServeFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	for _, args := range [][]string{
		{"serve", "-shards", "0"},
		{"serve", "-workers", "-1"},
		{"serve", "-submit-window", "-2"},
		{"serve", "-job-timeout", "-1s"},
		{"serve", "stray.pn"},
	} {
		if err := run(args, &buf); err == nil {
			t.Errorf("%v: want error", args)
		}
	}
}

func TestQssdBatchFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	for _, args := range [][]string{
		{"-workers", "-1", "-gen", "1"},
		{"-submit-window", "-3", "-gen", "1"},
		{"-job-timeout", "-5s", "-gen", "1"},
	} {
		if err := run(args, &buf); err == nil {
			t.Errorf("%v: want error", args)
		}
	}
}

func TestQssdMergeFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-merge"}, &buf); err == nil {
		t.Error("-merge without -journal must error")
	}
	if err := run([]string{"-merge", "-journal", filepath.Join(t.TempDir(), "out.jsonl")}, &buf); err == nil {
		t.Error("-merge without inputs must error")
	}
}

// TestQssdMergeFoldsJournals exercises the merge mode on journals from
// two separate batch runs with an overlapping net: later input wins and
// the result is compact (one sorted line per hash).
func TestQssdMergeFoldsJournals(t *testing.T) {
	dir := t.TempDir()
	j1 := filepath.Join(dir, "a.jsonl")
	j2 := filepath.Join(dir, "b.jsonl")
	runJSON(t, "-gen", "3", "-gen-seed", "100", "-journal", j1)
	runJSON(t, "-gen", "3", "-gen-seed", "102", "-journal", j2) // seed 102 overlaps

	out := filepath.Join(dir, "out.jsonl")
	var buf bytes.Buffer
	if err := run([]string{"-merge", "-journal", out, j1, j2}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "merged 2 journals: 6 lines -> 5 entries") {
		t.Fatalf("merge summary: %q", buf.String())
	}
	entries, err := jnl.Read(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("merged entries = %d, want 5", len(entries))
	}
	for seed := uint64(100); seed < 105; seed++ {
		if _, ok := entries[genHash(seed)]; !ok {
			t.Errorf("merged journal missing seed %d", seed)
		}
	}
}

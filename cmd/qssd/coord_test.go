package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// multiProc boots several qssd processes (serve and coord) inside one
// test. Unlike startServe's one-shot swap, serveSignals is replaced
// once with a factory handing each process its own signal channel, so
// instances can be stopped together regardless of start order.
type multiProc struct {
	t  *testing.T
	mu sync.Mutex
	// one signal channel and one exit channel per started process
	sigs  []chan os.Signal
	errcs []chan error
	outs  []*syncBuf
}

func newMultiProc(t *testing.T) *multiProc {
	t.Helper()
	m := &multiProc{t: t}
	old := serveSignals
	serveSignals = func() (<-chan os.Signal, func()) {
		ch := make(chan os.Signal, 1)
		m.mu.Lock()
		m.sigs = append(m.sigs, ch)
		m.mu.Unlock()
		return ch, func() {}
	}
	t.Cleanup(func() { serveSignals = old })
	return m
}

// start boots one process and scrapes its bound base URL from the
// line starting with prefix (e.g. "qssd: serving on ").
func (m *multiProc) start(prefix string, args ...string) string {
	m.t.Helper()
	out := &syncBuf{}
	errc := make(chan error, 1)
	go func() { errc <- run(args, out) }()
	m.mu.Lock()
	m.errcs = append(m.errcs, errc)
	m.outs = append(m.outs, out)
	m.mu.Unlock()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			m.t.Fatalf("%q never printed its address; output: %q", args, out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if strings.HasPrefix(line, prefix) {
				return strings.Fields(line)[3]
			}
		}
		select {
		case err := <-errc:
			m.t.Fatalf("%q exited early: %v (output %q)", args, err, out.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// stopAll interrupts every process and waits for clean exits.
func (m *multiProc) stopAll() {
	m.t.Helper()
	m.mu.Lock()
	sigs, errcs := m.sigs, m.errcs
	m.mu.Unlock()
	for _, ch := range sigs {
		ch <- os.Interrupt
	}
	for i, errc := range errcs {
		select {
		case err := <-errc:
			if err != nil {
				m.t.Fatalf("process %d shutdown: %v", i, err)
			}
		case <-time.After(30 * time.Second):
			m.t.Fatalf("process %d did not shut down", i)
		}
	}
}

// TestQssdCoordClientRoundTrip is the CLI smoke of the coordinator:
// two serve backends, a coord front door, and the HTTP client mode
// driving a corpus through it — full availability, a journal on disk,
// and the drain banner on shutdown.
func TestQssdCoordClientRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := newMultiProc(t)
	b0 := m.start("qssd: serving on ", "serve", "-addr", "127.0.0.1:0", "-shards", "1")
	b1 := m.start("qssd: serving on ", "serve", "-addr", "127.0.0.1:0", "-shards", "1")
	coordBase := m.start("qssd: coordinating on ", "coord",
		"-addr", "127.0.0.1:0",
		"-backends", b0+","+b1,
		"-journal", filepath.Join(dir, "coord.jsonl"),
		"-probe-interval", "50ms",
	)

	outPath := filepath.Join(dir, "report.json")
	var buf bytes.Buffer
	err := run([]string{"-server", coordBase, "-gen", "4", "-gen-seed", "70",
		"-repeat", "2", "-workers", "2", "-o", outPath}, &buf)
	if err != nil {
		t.Fatalf("client run through coordinator: %v", err)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep batchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.StatusCounts["ok"] != 4 || rep.Jobs != 8 {
		t.Fatalf("status counts %+v jobs %d", rep.StatusCounts, rep.Jobs)
	}
	if rep.Availability != 1 {
		t.Errorf("availability = %v, want 1 with all backends healthy", rep.Availability)
	}
	if rep.LatencyP50MS <= 0 || rep.LatencyP99MS < rep.LatencyP50MS {
		t.Errorf("latency percentiles: p50=%v p99=%v", rep.LatencyP50MS, rep.LatencyP99MS)
	}
	if len(rep.ServerStats) == 0 {
		t.Error("server_stats (coordinator /v1/stats) missing")
	}

	m.stopAll()
	coordOut := m.outs[2].String()
	if !strings.Contains(coordOut, "qssd: coordinator drained") {
		t.Errorf("coordinator drain banner missing: %q", coordOut)
	}
	// The coordinator journalled the batch's analyses.
	if st, err := os.Stat(filepath.Join(dir, "coord.jsonl")); err != nil || st.Size() == 0 {
		t.Errorf("coordinator journal missing or empty: %v", err)
	}
}

// TestQssdCoordFlagValidation pins the refusal paths of the coord
// subcommand.
func TestQssdCoordFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"coord"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "-backends") {
		t.Errorf("missing -backends: err=%v", err)
	}
	if err := run([]string{"coord", "-backends", "http://x", "stray"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "positional") {
		t.Errorf("positional args: err=%v", err)
	}
	if err := run([]string{"coord", "-backends", "http://x", "-retries", "0"}, &buf); err == nil {
		t.Error("zero retries must be refused")
	}
	if err := run([]string{"coord", "-backends", "http://x", "-breaker-threshold", "0"}, &buf); err == nil {
		t.Error("zero breaker threshold must be refused")
	}
}

package main

// Crash-safe checkpoint journal for qssd: one JSON line per completed
// job, appended as the engine's AnalyzeEach callback fires (the engine
// serialises the callback, so the writer needs no locking). A killed run
// leaves at worst one torn final line; -resume reads the journal back,
// tolerates that torn line, skips every net whose canonical hash already
// completed "ok", and re-seeds the engine's quarantine from journalled
// panics so a poisoned net is not re-run either.

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"sort"

	"fcpn/internal/engine"
)

// statusSkippedResume is the qssd-level status of a net whose report was
// rehydrated from the journal instead of re-analysed. It extends the
// engine's JobStatus vocabulary in reports only.
const statusSkippedResume = "skipped-resume"

// journalEntry is one journal line, keyed by the net's canonical hash —
// the same key the engine's cache and quarantine use, so a renamed but
// structurally identical net still resumes.
type journalEntry struct {
	Hash      string            `json:"hash"`
	Source    string            `json:"source"`
	Status    string            `json:"status"`
	Error     string            `json:"error,omitempty"`
	ElapsedMS float64           `json:"elapsed_ms"`
	Report    *engine.NetReport `json:"report,omitempty"`
}

// journalWriter appends entries to the journal file. Writes go straight
// to the file descriptor (no userspace buffering), so a completed record
// survives a process kill; only a write torn mid-line is lost, and the
// reader tolerates that.
type journalWriter struct {
	f   *os.File
	err error
}

func openJournal(path string) (*journalWriter, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	// A kill mid-write can leave the file without a final newline. New
	// entries must not concatenate onto that torn line — terminate it so
	// the torn fragment stays an isolated, skippable line.
	if st, err := f.Stat(); err == nil && st.Size() > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], st.Size()-1); err == nil && last[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	return &journalWriter{f: f}, nil
}

// record appends one entry. The first write error sticks and is reported
// by Close, so the analysis loop never aborts mid-batch over a full disk.
func (w *journalWriter) record(ent journalEntry) {
	if w == nil || w.err != nil {
		return
	}
	b, err := json.Marshal(ent)
	if err != nil {
		w.err = err
		return
	}
	if _, err := w.f.Write(append(b, '\n')); err != nil {
		w.err = err
	}
}

// Close closes the file and reports the first error seen.
func (w *journalWriter) Close() error {
	if w == nil {
		return nil
	}
	cerr := w.f.Close()
	if w.err != nil {
		return w.err
	}
	return cerr
}

// compactJournal rewrites the journal in place to one line per canonical
// hash, keeping the latest entry for each — the exact state -resume would
// reconstruct, including quarantine records (a panicked or quarantined
// entry is the latest for its hash until the net is successfully
// re-analysed, so later-wins preserves it). Entries are written sorted by
// hash so compaction is deterministic, and the rewrite goes through a
// temporary file renamed over the original so a crash mid-compaction
// never loses the journal. Returns the line count before and the entry
// count after.
func compactJournal(path string) (before, after int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	entries := map[string]journalEntry{}
	r := bufio.NewReader(f)
	for {
		line, rerr := r.ReadBytes('\n')
		if len(line) > 0 {
			before++
			var ent journalEntry
			if jerr := json.Unmarshal(line, &ent); jerr == nil && ent.Hash != "" {
				entries[ent.Hash] = ent
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			f.Close()
			return before, 0, rerr
		}
	}
	f.Close()

	hashes := make([]string, 0, len(entries))
	for h := range entries {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)

	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".compact-*")
	if err != nil {
		return before, 0, err
	}
	defer os.Remove(tmp.Name())
	for _, h := range hashes {
		b, err := json.Marshal(entries[h])
		if err != nil {
			tmp.Close()
			return before, 0, err
		}
		if _, err := tmp.Write(append(b, '\n')); err != nil {
			tmp.Close()
			return before, 0, err
		}
	}
	if err := tmp.Close(); err != nil {
		return before, 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return before, 0, err
	}
	return before, len(entries), nil
}

// readJournal loads a journal into a hash-keyed map. Later entries win
// (a resumed run re-journals the nets it re-analyses). Unparsable lines
// are skipped: the journal is append-only, so the only malformed line a
// crash can produce is a torn final one.
func readJournal(path string) (map[string]journalEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]journalEntry{}
	r := bufio.NewReader(f)
	for {
		line, err := r.ReadBytes('\n')
		if len(line) > 0 {
			var ent journalEntry
			if jerr := json.Unmarshal(line, &ent); jerr == nil && ent.Hash != "" {
				out[ent.Hash] = ent
			}
		}
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"fcpn/internal/engine"
	jnl "fcpn/internal/journal"
	"fcpn/internal/netgen"
)

// genHash is the canonical hash of the net `-gen` builds for a seed.
func genHash(seed uint64) string {
	return netgen.RandomSchedulablePipeline(seed, netgen.DefaultConfig()).CanonicalHash()
}

func TestQssdJournalWritesEveryJob(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "j.jsonl")
	rep := runJSON(t, "-gen", "5", "-gen-seed", "20", "-journal", journal)
	if rep.StatusCounts["ok"] != 5 {
		t.Fatalf("status counts: %+v", rep.StatusCounts)
	}
	entries, err := jnl.Read(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("journal has %d entries, want 5", len(entries))
	}
	for seed := uint64(20); seed < 25; seed++ {
		ent, ok := entries[genHash(seed)]
		if !ok {
			t.Fatalf("journal missing entry for seed %d", seed)
		}
		if ent.Status != "ok" || ent.Report == nil || !ent.Report.Schedulable {
			t.Fatalf("bad journal entry for seed %d: %+v", seed, ent)
		}
	}
}

// TestQssdResumeSkipsCompleted simulates a crash after part of the
// corpus: a first run journals 3 of 6 nets, the resumed run must
// re-analyse exactly the other 3 and rehydrate the journalled reports
// byte-identically.
func TestQssdResumeSkipsCompleted(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "j.jsonl")
	first := runJSON(t, "-gen", "3", "-gen-seed", "30", "-journal", journal)
	if first.StatusCounts["ok"] != 3 {
		t.Fatalf("first run: %+v", first.StatusCounts)
	}

	// Simulate the kill having torn the final line mid-write: the reader
	// must shrug it off.
	f, err := os.OpenFile(journal, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"hash":"torn-entr`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rep := runJSON(t, "-gen", "6", "-gen-seed", "30", "-journal", journal, "-resume")
	if rep.StatusCounts[statusSkippedResume] != 3 || rep.StatusCounts["ok"] != 3 {
		t.Fatalf("resumed run: %+v", rep.StatusCounts)
	}
	if rep.Jobs != 3 {
		t.Errorf("resumed run submitted %d jobs, want 3", rep.Jobs)
	}
	byHash := map[string]netResult{}
	for _, r := range rep.Results {
		byHash[r.Report.Hash] = r
	}
	for seed := uint64(30); seed < 36; seed++ {
		r, ok := byHash[genHash(seed)]
		if !ok {
			t.Fatalf("resumed report missing seed %d", seed)
		}
		wantStatus := "ok"
		if seed < 33 {
			wantStatus = statusSkippedResume
		}
		if r.Status != wantStatus {
			t.Errorf("seed %d: status %q, want %q", seed, r.Status, wantStatus)
		}
		if r.Report == nil || !r.Report.Schedulable {
			t.Errorf("seed %d: missing/bad rehydrated report", seed)
		}
	}

	// Rehydrated reports must match what a fresh analysis produces.
	fresh := runJSON(t, "-gen", "1", "-gen-seed", "30")
	a, _ := json.Marshal(fresh.Results[0].Report)
	b, _ := json.Marshal(byHash[genHash(30)].Report)
	if !bytes.Equal(a, b) {
		t.Errorf("rehydrated report differs from fresh analysis:\n%s\nvs\n%s", b, a)
	}

	// After the resumed run the journal covers the whole corpus: a second
	// resume re-analyses nothing.
	again := runJSON(t, "-gen", "6", "-gen-seed", "30", "-journal", journal, "-resume")
	if again.StatusCounts[statusSkippedResume] != 6 || again.Jobs != 0 {
		t.Fatalf("second resume: %+v jobs=%d", again.StatusCounts, again.Jobs)
	}
}

// TestQssdResumeQuarantinesJournalledPanics checks a net journalled as
// panicked is refused on resume (quarantined), not re-run.
func TestQssdResumeQuarantinesJournalledPanics(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "j.jsonl")
	ent, err := json.Marshal(jnl.Entry{
		Hash:   genHash(40),
		Source: "gen:40",
		Status: string(engine.StatusPanicked),
		Error:  "engine: job panicked: synthetic for test",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(journal, append(ent, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	rep := runJSON(t, "-gen", "2", "-gen-seed", "40", "-journal", journal, "-resume")
	if rep.StatusCounts[string(engine.StatusQuarantined)] != 1 || rep.StatusCounts["ok"] != 1 {
		t.Fatalf("status counts: %+v", rep.StatusCounts)
	}
	for _, r := range rep.Results {
		if r.Source == "gen:40" {
			if r.Status != string(engine.StatusQuarantined) || r.Error == "" {
				t.Fatalf("journalled panic net: %+v", r)
			}
		}
	}
	// The quarantine refusal is itself journalled, so the next resume
	// still refuses it.
	entries, err := jnl.Read(journal)
	if err != nil {
		t.Fatal(err)
	}
	if got := entries[genHash(40)].Status; got != string(engine.StatusQuarantined) {
		t.Fatalf("journal now records %q for the poisoned net", got)
	}
}

func TestQssdResumeRequiresJournal(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-resume", "-gen", "1"}, &buf); err == nil {
		t.Fatal("-resume without -journal must error")
	}
}

// TestQssdCompactJournal runs the same corpus twice (doubling every
// hash's line count), tears a final line, and plants a quarantine record
// for an unrelated net; -compact must fold the file to one line per hash,
// keep the quarantine record, and leave -resume behaviour unchanged.
func TestQssdCompactJournal(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "j.jsonl")
	runJSON(t, "-gen", "3", "-gen-seed", "50", "-journal", journal)
	runJSON(t, "-gen", "3", "-gen-seed", "50", "-journal", journal)

	quarantined, err := json.Marshal(jnl.Entry{
		Hash:   genHash(60),
		Source: "gen:60",
		Status: string(engine.StatusPanicked),
		Error:  "engine: job panicked: synthetic for test",
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(journal, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(append(quarantined, []byte("\n{\"hash\":\"torn")...)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	before, err := jnl.Read(journal)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := run([]string{"-journal", journal, "-compact"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("8 lines -> 4 entries")) {
		t.Fatalf("compact summary: %q", buf.String())
	}

	raw, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(raw, "\n"), []byte("\n"))
	if len(lines) != 4 {
		t.Fatalf("compacted journal has %d lines, want 4:\n%s", len(lines), raw)
	}
	var prevHash string
	for _, line := range lines {
		var ent jnl.Entry
		if err := json.Unmarshal(line, &ent); err != nil {
			t.Fatalf("compacted line %q: %v", line, err)
		}
		if ent.Hash <= prevHash {
			t.Fatalf("compacted journal not sorted by hash: %q after %q", ent.Hash, prevHash)
		}
		prevHash = ent.Hash
	}

	after, err := jnl.Read(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("compaction changed the entry set: %d -> %d", len(before), len(after))
	}
	for h, want := range before {
		got, ok := after[h]
		if !ok {
			t.Fatalf("compaction dropped hash %s", h)
		}
		a, _ := json.Marshal(got)
		b, _ := json.Marshal(want)
		if !bytes.Equal(a, b) {
			t.Fatalf("compaction changed entry %s:\n%s\nvs\n%s", h, a, b)
		}
	}
	if after[genHash(60)].Status != string(engine.StatusPanicked) {
		t.Fatal("compaction lost the quarantine record")
	}

	// The compacted journal still resumes: seeds 50-52 skipped, 60
	// refused, 53 analysed fresh.
	rep := runJSON(t, "-gen", "4", "-gen-seed", "50", "-journal", journal, "-resume")
	if rep.StatusCounts[statusSkippedResume] != 3 || rep.StatusCounts["ok"] != 1 {
		t.Fatalf("resume after compaction: %+v", rep.StatusCounts)
	}
}

func TestQssdCompactRequiresJournal(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-compact"}, &buf); err == nil {
		t.Fatal("-compact without -journal must error")
	}
}

// TestQssdJournalRoundTripsTiming pins the tentpole's journal contract:
// with -mk/-margin the journalled reports carry the timing verdict and
// margins, -compact preserves them, and a -resume rehydrates them
// byte-identically to a fresh analysis.
func TestQssdJournalRoundTripsTiming(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "j.jsonl")
	first := runJSON(t, "-gen", "2", "-gen-seed", "80", "-mk", "9,10", "-margin", "-journal", journal)
	if first.StatusCounts["ok"] != 2 {
		t.Fatalf("first run: %+v", first.StatusCounts)
	}
	for _, r := range first.Results {
		tr := r.Report.Timing
		if tr == nil || tr.Verdict == nil || len(tr.Margins) != 2 {
			t.Fatalf("net %s: report missing timing verdict/margins: %+v", r.Source, tr)
		}
	}

	var buf bytes.Buffer
	if err := run([]string{"-journal", journal, "-compact"}, &buf); err != nil {
		t.Fatal(err)
	}
	entries, err := jnl.Read(journal)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(80); seed < 82; seed++ {
		ent := entries[genHash(seed)]
		if ent.Report == nil || ent.Report.Timing == nil || ent.Report.Timing.Verdict == nil {
			t.Fatalf("compacted journal lost timing for seed %d: %+v", seed, ent.Report)
		}
	}

	resumed := runJSON(t, "-gen", "2", "-gen-seed", "80", "-mk", "9,10", "-margin", "-journal", journal, "-resume")
	if resumed.StatusCounts[statusSkippedResume] != 2 || resumed.Jobs != 0 {
		t.Fatalf("resume after compaction: %+v jobs=%d", resumed.StatusCounts, resumed.Jobs)
	}
	fresh := runJSON(t, "-gen", "2", "-gen-seed", "80", "-mk", "9,10", "-margin")
	byHash := map[string][]byte{}
	for _, r := range resumed.Results {
		b, _ := json.Marshal(r.Report.Timing)
		byHash[r.Report.Hash] = b
	}
	for _, r := range fresh.Results {
		want, _ := json.Marshal(r.Report.Timing)
		if got := byHash[r.Report.Hash]; !bytes.Equal(got, want) {
			t.Errorf("rehydrated timing differs from fresh analysis for %s:\n%s\nvs\n%s",
				r.Source, got, want)
		}
	}
}

func TestQssdMarginRequiresMK(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-margin", "-gen", "1"}, &buf); err == nil {
		t.Fatal("-margin without -mk must error")
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func runJSON(t *testing.T, args ...string) batchReport {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("qssd %v: %v", args, err)
	}
	var rep batchReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("bad report JSON: %v\n%s", err, buf.String())
	}
	return rep
}

func TestQssdManifestAndRepeat(t *testing.T) {
	manifest := filepath.Join(t.TempDir(), "nets.txt")
	abs, err := filepath.Abs("../../examples/nets/figure5.pn")
	if err != nil {
		t.Fatal(err)
	}
	content := "# corpus\n" + abs + "\n"
	if err := os.WriteFile(manifest, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}

	rep := runJSON(t, "-manifest", manifest, "-repeat", "3", "-workers", "2")
	if rep.Nets != 1 || rep.Jobs != 3 || rep.Repeat != 3 {
		t.Fatalf("bad counts: %+v", rep)
	}
	if rep.Stats.CacheHits == 0 {
		t.Errorf("repeated manifest produced no cache hits: %+v", rep.Stats)
	}
	if rep.ColdElapsedMS <= 0 || rep.WarmElapsedMS <= 0 {
		t.Errorf("missing cold/warm split: cold=%v warm=%v", rep.ColdElapsedMS, rep.WarmElapsedMS)
	}
	if rep.ColdNetsPerSec <= 0 || rep.WarmNetsPerSec <= 0 {
		t.Errorf("missing cold/warm throughput: %+v", rep)
	}
	if rep.GoMaxProcs < 1 || rep.NumCPU < 1 {
		t.Errorf("missing host parallelism fields: %+v", rep)
	}
	if len(rep.Results) != 1 || !rep.Results[0].Report.Schedulable {
		t.Fatalf("bad results: %+v", rep.Results)
	}
	if rep.Results[0].Source != abs {
		t.Errorf("source = %q, want %q", rep.Results[0].Source, abs)
	}
}

func TestQssdGeneratedCorpus(t *testing.T) {
	rep := runJSON(t, "-gen", "8", "-gen-seed", "7", "-repeat", "2", "-compare-serial")
	if rep.Nets != 8 || rep.Jobs != 16 {
		t.Fatalf("bad counts: %+v", rep)
	}
	if rep.Results[0].Source != "gen:7" || rep.Results[7].Source != "gen:14" {
		t.Errorf("bad sources: %q %q", rep.Results[0].Source, rep.Results[7].Source)
	}
	if rep.Stats.HitRate == 0 {
		t.Errorf("warm pass produced no hits: %+v", rep.Stats)
	}
	if rep.Speedup == 0 || rep.SerialColdElapsedMS == 0 {
		t.Errorf("-compare-serial missing from report: %+v", rep)
	}
	for _, r := range rep.Results {
		if !r.Report.Schedulable {
			t.Errorf("generated pipeline %s not schedulable: %s", r.Source, r.Report.ScheduleError)
		}
		if r.Trace == nil || len(r.Trace.Phases) == 0 {
			t.Errorf("net %s: missing per-net trace block", r.Source)
			continue
		}
		// The trace block must account for the job: non-detail phases sum
		// to the elapsed wall time modulo scheduling glue (acceptance says
		// within 10%; allow an absolute floor for sub-ms jobs).
		if top := r.Trace.TopTotalMS(); top > r.ElapsedMS*1.02+0.05 {
			t.Errorf("net %s: phases sum to %.3f ms beyond elapsed %.3f ms", r.Source, top, r.ElapsedMS)
		}
	}
}

func TestQssdEmptyCorpus(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("empty corpus must error")
	}
}

func TestQssdPositionalFilesAndOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	var buf bytes.Buffer
	err := run([]string{"-o", out, "../../examples/nets/figure2.pn", "../../examples/nets/figure5.pn"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("-o should leave stdout empty, got %q", buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep batchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Nets != 2 || rep.Results[1].Report.Name == "" {
		t.Fatalf("bad report: %+v", rep)
	}
}

// TestQssdParallelismWarning pins the report's GOMAXPROCS=1 warning: set
// when the process has a single scheduling slot, absent otherwise.
func TestQssdParallelismWarning(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)

	rep := runJSON(t, "-gen", "1", "-gen-seed", "70")
	if rep.GoMaxProcs != 1 || rep.ParallelismWarning == "" {
		t.Fatalf("GOMAXPROCS=1 run must warn: gomaxprocs=%d warning=%q",
			rep.GoMaxProcs, rep.ParallelismWarning)
	}

	runtime.GOMAXPROCS(2)
	rep = runJSON(t, "-gen", "1", "-gen-seed", "70")
	if rep.GoMaxProcs != 2 || rep.ParallelismWarning != "" {
		t.Fatalf("GOMAXPROCS=2 run must not warn: gomaxprocs=%d warning=%q",
			rep.GoMaxProcs, rep.ParallelismWarning)
	}
}

// Command qss is the software-synthesis front end: it reads a Free-Choice
// Petri Net in the textual format, checks quasi-static schedulability,
// and prints the valid schedule, the task partition, or the generated C
// implementation.
//
// Usage:
//
//	qss [-c] [-standalone] [-guards] [-schedule] [-tasks] [-bounds]
//	    [-verify-bounds] [-cpuprofile f] [-trace f] [file.pn]
//
// With no file the net is read from stdin. With no mode flags, -schedule
// is assumed. -verify-bounds replays the synthesised implementation under
// seeded fault scenarios (bursts, duplicates, losses, timer jitter) and
// checks the observed buffer peaks against the net's structural bounds;
// -guards emits runtime overflow checks into the generated C.
// -cpuprofile and -trace capture a pprof CPU profile / runtime execution
// trace of the whole run for `go tool pprof` / `go tool trace`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"

	"fcpn"
	"fcpn/internal/codegen"
	"fcpn/internal/core"
	"fcpn/internal/fault"
	"fcpn/internal/rtos"
	"fcpn/internal/sim"
	"fcpn/internal/timing"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qss:", err)
		os.Exit(1)
	}
}

// run is the testable core of the command.
func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("qss", flag.ContinueOnError)
	emitC := fs.Bool("c", false, "emit the synthesised C implementation")
	emitH := fs.Bool("h", false, "emit the companion C header (task entries + hooks)")
	standalone := fs.Bool("standalone", false, "with -c: append a main() driver")
	showSchedule := fs.Bool("schedule", false, "print the valid schedule (default)")
	showTasks := fs.Bool("tasks", false, "print the task partition")
	showBounds := fs.Bool("bounds", false, "print static buffer bounds")
	explore := fs.Bool("explore", false, "print the code/buffer tradeoff of the cycle strategies")
	asJSON := fs.Bool("json", false, "print the valid schedule as JSON")
	showIR := fs.Bool("ir", false, "print the generated code's intermediate tree")
	showTree := fs.Bool("tree", false, "print the schedule as a decision tree")
	treeDot := fs.Bool("tree-dot", false, "print the decision tree as Graphviz dot")
	maxAlloc := fs.Int("max-allocations", 0, "cap on T-allocations (0 = default)")
	guards := fs.Bool("guards", false, "with -c: emit runtime overflow checks against the static buffer bounds")
	verifyBounds := fs.Bool("verify-bounds", false, "replay the schedule under seeded fault scenarios and check buffer bounds")
	scenarios := fs.Int("scenarios", 10, "with -verify-bounds: number of seeded fault scenarios")
	faultSeed := fs.Uint64("fault-seed", 0xFA117, "with -verify-bounds/-mk: scenario and injector seed")
	eventsPer := fs.Int("events", 50, "with -verify-bounds/-mk: workload events per source transition")
	mkFlag := fs.String("mk", "", "check the weakly-hard (m,k) deadline constraint, e.g. -mk 9,10")
	marginFlag := fs.String("margin", "", "with -mk: comma-separated overload kinds to margin-search (burst,jitter,drop,overrun)")
	deadlineFlag := fs.Int64("deadline", 0, "with -mk: per-event response budget in cycles (0 = calibrate to 2x nominal worst response)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	execTrace := fs.String("trace", "", "write a runtime/trace execution trace of the run to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *execTrace != "" {
		f, err := os.Create(*execTrace)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			return err
		}
		defer rtrace.Stop()
	}

	in := stdin
	name := "<stdin>"
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
		name = fs.Arg(0)
	}
	net, err := fcpn.Parse(in)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}

	opt := fcpn.Options{MaxAllocations: *maxAlloc}
	syn, err := fcpn.Synthesize(net, opt)
	if err != nil {
		return err
	}

	if !*emitC && !*emitH && !*showTasks && !*showBounds && !*explore && !*asJSON && !*showIR && !*showTree && !*treeDot && !*verifyBounds && *mkFlag == "" {
		*showSchedule = true
	}
	if *emitH {
		fmt.Fprint(stdout, codegen.EmitH(syn.Program))
	}
	if *treeDot {
		fmt.Fprint(stdout, syn.Schedule.TreeDOT())
	}
	if *showTree {
		fmt.Fprint(stdout, syn.Schedule.FormatTree())
	}
	if *showIR {
		fmt.Fprint(stdout, codegen.FormatIR(syn.Program))
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(syn.Schedule.Export()); err != nil {
			return err
		}
	}
	if *showSchedule {
		fmt.Fprintf(stdout, "net %q is quasi-statically schedulable: %d T-allocations, %d distinct T-reductions\n",
			net.Name(), syn.Schedule.AllocationCount, len(syn.Schedule.Cycles))
		for i, names := range syn.Schedule.CycleStrings() {
			fmt.Fprintf(stdout, "  cycle %d: (%s)\n", i+1, strings.Join(names, " "))
		}
		if st, err := syn.Schedule.Stats(); err == nil {
			fmt.Fprintf(stdout, "  stats: longest cycle %d firings, %d total; buffers %d tokens (max %d per place)\n",
				st.MaxCycleLen, st.TotalFirings, st.TotalBufferBound, st.MaxBuffer)
		}
	}
	if *showTasks {
		fmt.Fprintf(stdout, "tasks: %d\n", syn.NumTasks())
		for _, task := range syn.Partition.Tasks {
			var srcs []string
			for _, s := range task.Sources {
				srcs = append(srcs, net.TransitionName(s))
			}
			fmt.Fprintf(stdout, "  %s (sources: %s): %s\n", task.Name,
				strings.Join(srcs, ", "),
				strings.Join(net.SequenceNames(task.Transitions), " "))
		}
		shared := syn.Partition.SharedTransitions()
		if len(shared) > 0 {
			fmt.Fprintf(stdout, "  shared: %s\n", strings.Join(net.SequenceNames(shared), " "))
		}
	}
	if *showBounds {
		bounds, err := syn.BufferBounds()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "static buffer bounds:")
		for p, k := range bounds {
			fmt.Fprintf(stdout, "  %s: %d\n", net.PlaceName(fcpn.Place(p)), k)
		}
	}
	if *explore {
		points, err := core.Explore(net, core.Options{MaxAllocations: *maxAlloc})
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "schedule exploration (code batching vs. buffer memory):")
		fmt.Fprintf(stdout, "  %-12s %16s %14s %10s\n", "strategy", "total buffers", "max buffer", "switches")
		for _, pt := range points {
			fmt.Fprintf(stdout, "  %-12s %16d %14d %10d\n",
				pt.Strategy, pt.TotalBufferBound, pt.MaxBufferBound, pt.Switches)
		}
	}
	if *verifyBounds {
		if err := runVerifyBounds(stdout, syn, *scenarios, *faultSeed, *eventsPer); err != nil {
			return err
		}
	}
	if *mkFlag != "" {
		if err := runTimingSafety(stdout, syn, *mkFlag, *marginFlag, *deadlineFlag, *faultSeed, *eventsPer); err != nil {
			return err
		}
	}
	if *emitC {
		cfg := codegen.CConfig{Standalone: *standalone}
		if *guards {
			bounds, err := syn.BufferBounds()
			if err != nil {
				return err
			}
			cfg.Guards = true
			cfg.Bounds = bounds
		}
		fmt.Fprint(stdout, codegen.EmitC(syn.Program, cfg))
	}
	return nil
}

// runTimingSafety replays the synthesised implementation against the
// deterministic periodic workload (the -verify-bounds workload, fault
// free), checks the deadline hit/miss stream against the weakly-hard
// (m,k) constraint, and — when -margin lists overload kinds — binary
// searches each kind's injector intensity for the harshest overload the
// constraint survives. Exits non-zero when the nominal run violates the
// constraint.
func runTimingSafety(stdout io.Writer, syn *fcpn.Synthesis, mkStr, marginStr string, deadline int64, seed uint64, eventsPer int) error {
	c, err := timing.Parse(mkStr)
	if err != nil {
		return err
	}
	net := syn.Net
	sources := net.SourceTransitions()
	if len(sources) == 0 {
		fmt.Fprintln(stdout, "timing: net has no source transitions; nothing to replay")
		return nil
	}
	if eventsPer <= 0 {
		eventsPer = 50
	}
	var streams [][]rtos.Event
	for i, src := range sources {
		streams = append(streams, rtos.Periodic(src, int64(2*i+3), int64(i), eventsPer))
	}
	base := rtos.Merge(streams...)
	cost := rtos.DefaultCostModel()
	hooks := func() sim.Hooks {
		return sim.Hooks{Resolver: sim.NewDecisionStream(net, seed).Resolver()}
	}

	if deadline == 0 {
		deadline, err = sim.CalibrateDeadline(syn.Program, base, cost,
			sim.RobustConfig{CyclesPerTick: 1}, hooks(), sim.DefaultDeadlineFactor)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "timing: deadline calibrated to %d cycles (%dx nominal worst response)\n",
			deadline, sim.DefaultDeadlineFactor)
	}
	rm, err := sim.RunRobust(syn.Program, base, cost,
		sim.RobustConfig{CyclesPerTick: 1, Deadline: deadline, MK: c}, hooks())
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "timing: %s\n", rm.Timing)

	if marginStr != "" {
		for _, name := range strings.Split(marginStr, ",") {
			kind, err := sim.ParseOverloadKind(name)
			if err != nil {
				return err
			}
			om, err := sim.SearchOverloadMargin(syn.Program, base, cost, sim.MarginConfig{
				Kind:   kind,
				MK:     c,
				Seed:   seed,
				Robust: sim.RobustConfig{CyclesPerTick: 1, Deadline: deadline},
				Hooks:  hooks,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "  margin %-8s %s\n", om.Kind+":", om.Result)
		}
	}
	if !rm.Timing.Satisfied {
		return fmt.Errorf("timing: weakly-hard constraint %s violated", c)
	}
	return nil
}

// runVerifyBounds replays the synthesised implementation under n seeded
// fault scenarios, resolving choices from each scenario's seed, and
// checks the observed per-place peaks against the net's structural
// (P-invariant) bounds — the executable form of the schedulability
// theorem's bounded-memory claim. Per-cycle schedule bounds are reported
// as backlog (expected under bursts), not as violations.
func runVerifyBounds(stdout io.Writer, syn *fcpn.Synthesis, n int, seed uint64, eventsPer int) error {
	net := syn.Net
	sources := net.SourceTransitions()
	if len(sources) == 0 {
		fmt.Fprintln(stdout, "verify-bounds: net has no source transitions; nothing to replay")
		return nil
	}
	if eventsPer <= 0 {
		eventsPer = 50
	}
	var streams [][]rtos.Event
	for i, src := range sources {
		// Deterministic co-prime-ish periods so the sources interleave.
		streams = append(streams, rtos.Periodic(src, int64(2*i+3), int64(i), eventsPer))
	}
	base := rtos.Merge(streams...)
	limits, err := sim.StructuralLimits(net)
	if err != nil {
		return err
	}
	cycleLimits, err := syn.BufferBounds()
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "verify-bounds: %d scenarios x %d events over %d source(s)\n",
		n, len(base), len(sources))
	fmt.Fprintf(stdout, "  %-16s %8s %8s %10s %8s %8s\n",
		"scenario", "served", "dropped", "violations", "backlog", "peak")
	total := 0
	for _, sc := range fault.DefaultScenarios(n, seed) {
		events := sc.Apply(base)
		ds := sim.NewDecisionStream(net, sc.Seed)
		rm, err := sim.RunRobust(syn.Program, events, rtos.DefaultCostModel(), sim.RobustConfig{
			Limits:      limits,
			CycleLimits: cycleLimits,
		}, sim.Hooks{Resolver: ds.Resolver()})
		if err != nil {
			return fmt.Errorf("verify-bounds: scenario %s: %w", sc.Name, err)
		}
		maxPeak := 0
		for _, p := range rm.PeakCounters {
			if p > maxPeak {
				maxPeak = p
			}
		}
		fmt.Fprintf(stdout, "  %-16s %8d %8d %10d %8d %8d\n",
			sc.Name, rm.Events, rm.DroppedEvents, rm.BoundViolations, len(rm.CycleExceedances), maxPeak)
		for _, v := range rm.Violations {
			fmt.Fprintf(stdout, "    violation: %s\n", v)
		}
		total += rm.BoundViolations
	}
	if total > 0 {
		return fmt.Errorf("verify-bounds: %d structural bound violation(s)", total)
	}
	fmt.Fprintln(stdout, "  all structural bounds held")
	return nil
}

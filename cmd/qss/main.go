// Command qss is the software-synthesis front end: it reads a Free-Choice
// Petri Net in the textual format, checks quasi-static schedulability,
// and prints the valid schedule, the task partition, or the generated C
// implementation.
//
// Usage:
//
//	qss [-c] [-standalone] [-schedule] [-tasks] [-bounds] [file.pn]
//
// With no file the net is read from stdin. With no mode flags, -schedule
// is assumed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fcpn"
	"fcpn/internal/codegen"
	"fcpn/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qss:", err)
		os.Exit(1)
	}
}

// run is the testable core of the command.
func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("qss", flag.ContinueOnError)
	emitC := fs.Bool("c", false, "emit the synthesised C implementation")
	emitH := fs.Bool("h", false, "emit the companion C header (task entries + hooks)")
	standalone := fs.Bool("standalone", false, "with -c: append a main() driver")
	showSchedule := fs.Bool("schedule", false, "print the valid schedule (default)")
	showTasks := fs.Bool("tasks", false, "print the task partition")
	showBounds := fs.Bool("bounds", false, "print static buffer bounds")
	explore := fs.Bool("explore", false, "print the code/buffer tradeoff of the cycle strategies")
	asJSON := fs.Bool("json", false, "print the valid schedule as JSON")
	showIR := fs.Bool("ir", false, "print the generated code's intermediate tree")
	showTree := fs.Bool("tree", false, "print the schedule as a decision tree")
	treeDot := fs.Bool("tree-dot", false, "print the decision tree as Graphviz dot")
	maxAlloc := fs.Int("max-allocations", 0, "cap on T-allocations (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	in := stdin
	name := "<stdin>"
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
		name = fs.Arg(0)
	}
	net, err := fcpn.Parse(in)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}

	opt := fcpn.Options{MaxAllocations: *maxAlloc}
	syn, err := fcpn.Synthesize(net, opt)
	if err != nil {
		return err
	}

	if !*emitC && !*emitH && !*showTasks && !*showBounds && !*explore && !*asJSON && !*showIR && !*showTree && !*treeDot {
		*showSchedule = true
	}
	if *emitH {
		fmt.Fprint(stdout, codegen.EmitH(syn.Program))
	}
	if *treeDot {
		fmt.Fprint(stdout, syn.Schedule.TreeDOT())
	}
	if *showTree {
		fmt.Fprint(stdout, syn.Schedule.FormatTree())
	}
	if *showIR {
		fmt.Fprint(stdout, codegen.FormatIR(syn.Program))
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(syn.Schedule.Export()); err != nil {
			return err
		}
	}
	if *showSchedule {
		fmt.Fprintf(stdout, "net %q is quasi-statically schedulable: %d T-allocations, %d distinct T-reductions\n",
			net.Name(), syn.Schedule.AllocationCount, len(syn.Schedule.Cycles))
		for i, names := range syn.Schedule.CycleStrings() {
			fmt.Fprintf(stdout, "  cycle %d: (%s)\n", i+1, strings.Join(names, " "))
		}
		if st, err := syn.Schedule.Stats(); err == nil {
			fmt.Fprintf(stdout, "  stats: longest cycle %d firings, %d total; buffers %d tokens (max %d per place)\n",
				st.MaxCycleLen, st.TotalFirings, st.TotalBufferBound, st.MaxBuffer)
		}
	}
	if *showTasks {
		fmt.Fprintf(stdout, "tasks: %d\n", syn.NumTasks())
		for _, task := range syn.Partition.Tasks {
			var srcs []string
			for _, s := range task.Sources {
				srcs = append(srcs, net.TransitionName(s))
			}
			fmt.Fprintf(stdout, "  %s (sources: %s): %s\n", task.Name,
				strings.Join(srcs, ", "),
				strings.Join(net.SequenceNames(task.Transitions), " "))
		}
		shared := syn.Partition.SharedTransitions()
		if len(shared) > 0 {
			fmt.Fprintf(stdout, "  shared: %s\n", strings.Join(net.SequenceNames(shared), " "))
		}
	}
	if *showBounds {
		bounds, err := syn.BufferBounds()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "static buffer bounds:")
		for p, k := range bounds {
			fmt.Fprintf(stdout, "  %s: %d\n", net.PlaceName(fcpn.Place(p)), k)
		}
	}
	if *explore {
		points, err := core.Explore(net, core.Options{MaxAllocations: *maxAlloc})
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "schedule exploration (code batching vs. buffer memory):")
		fmt.Fprintf(stdout, "  %-12s %16s %14s %10s\n", "strategy", "total buffers", "max buffer", "switches")
		for _, pt := range points {
			fmt.Fprintf(stdout, "  %-12s %16d %14d %10d\n",
				pt.Strategy, pt.TotalBufferBound, pt.MaxBufferBound, pt.Switches)
		}
	}
	if *emitC {
		fmt.Fprint(stdout, syn.C(*standalone))
	}
	return nil
}

package main

import (
	"strings"
	"testing"
)

const fig4 = `
net figure4
place p1
place p2
place p3
trans t1
trans t2
trans t3
trans t4
trans t5
arc t1 -> p1
arc p1 -> t2 -> p2
arc p2 -> t4 * 2
arc p1 -> t3
arc t3 -> p3 * 2
arc p3 -> t5
`

func TestRunDefaultSchedule(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader(fig4), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{
		"quasi-statically schedulable",
		"2 distinct T-reductions",
		"cycle 1: (t1 t2 t1 t2 t4)",
		"cycle 2: (t1 t3 t5 t5)",
	} {
		if !strings.Contains(got, frag) {
			t.Fatalf("output missing %q:\n%s", frag, got)
		}
	}
}

func TestRunEmitC(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-c", "-standalone"}, strings.NewReader(fig4), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{"void task_t1(void)", "int main(void)", "while (n_p3 >= 1)"} {
		if !strings.Contains(got, frag) {
			t.Fatalf("output missing %q:\n%s", frag, got)
		}
	}
	if strings.Contains(got, "schedulable:") {
		t.Fatal("-c alone must not print the schedule report")
	}
}

func TestRunTasksAndBounds(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-tasks", "-bounds"}, strings.NewReader(fig4), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{"tasks: 1", "task_t1 (sources: t1)", "p2: 2", "p3: 2"} {
		if !strings.Contains(got, frag) {
			t.Fatalf("output missing %q:\n%s", frag, got)
		}
	}
}

func TestRunExplore(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-explore"}, strings.NewReader(fig4), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{"round-robin", "batch", "demand", "total buffers"} {
		if !strings.Contains(got, frag) {
			t.Fatalf("output missing %q:\n%s", frag, got)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader("garbage in"), &out); err == nil {
		t.Fatal("parse error not propagated")
	}
	// Non-schedulable net (figure 3b shape).
	bad := `
trans t1
trans t2
trans t3
trans t4
place p1
place p2
place p3
arc t1 -> p1
arc p1 -> t2 -> p2 -> t4
arc p1 -> t3 -> p3 -> t4
`
	if err := run(nil, strings.NewReader(bad), &out); err == nil {
		t.Fatal("non-schedulable verdict not propagated")
	}
	if err := run([]string{"/nonexistent/file.pn"}, nil, &out); err == nil {
		t.Fatal("missing file not propagated")
	}
	if err := run([]string{"-badflag"}, strings.NewReader(fig4), &out); err == nil {
		t.Fatal("bad flag not propagated")
	}
}

func TestRunJSON(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-json"}, strings.NewReader(fig4), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{`"net": "figure4"`, `"allocations": 2`, `"p1": "t2"`} {
		if !strings.Contains(got, frag) {
			t.Fatalf("JSON missing %q:\n%s", frag, got)
		}
	}
}

func TestRunIR(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-ir"}, strings.NewReader(fig4), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{"task task_t1 (source t1):", "choice p1:", "while p3>=1:"} {
		if !strings.Contains(got, frag) {
			t.Fatalf("IR missing %q:\n%s", frag, got)
		}
	}
}

func TestRunTree(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-tree"}, strings.NewReader(fig4), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "choice p1:") {
		t.Fatalf("tree missing choice:\n%s", got)
	}
}

func TestRunTreeDot(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-tree-dot"}, strings.NewReader(fig4), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "shape=diamond") {
		t.Fatalf("missing diamond:\n%s", out.String())
	}
}

func TestRunHeader(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-h"}, strings.NewReader(fig4), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{"#ifndef FCPN_FIGURE4_H", "void task_t1(void);", "int read_p1(void);"} {
		if !strings.Contains(got, frag) {
			t.Fatalf("header missing %q:\n%s", frag, got)
		}
	}
}

func TestRunOnShippedATM(t *testing.T) {
	// CLI smoke test on the big shipped net.
	var out strings.Builder
	if err := run([]string{"-tasks", "../../examples/nets/atmserver.pn"}, nil, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "tasks: 2") {
		t.Fatalf("output:\n%s", got)
	}
	if !strings.Contains(got, "shared: t_update_vg") {
		t.Fatalf("missing shared transition:\n%s", got)
	}
}

func TestRunVerifyBounds(t *testing.T) {
	var first, second strings.Builder
	if err := run([]string{"-verify-bounds", "-scenarios", "5", "-events", "20"}, strings.NewReader(fig4), &first); err != nil {
		t.Fatal(err)
	}
	got := first.String()
	for _, frag := range []string{"verify-bounds:", "scenario", "all structural bounds held"} {
		if !strings.Contains(got, frag) {
			t.Fatalf("output missing %q:\n%s", frag, got)
		}
	}
	if err := run([]string{"-verify-bounds", "-scenarios", "5", "-events", "20"}, strings.NewReader(fig4), &second); err != nil {
		t.Fatal(err)
	}
	if got != second.String() {
		t.Fatalf("same seed produced different reports:\n--- first\n%s--- second\n%s", got, second.String())
	}
	var other strings.Builder
	if err := run([]string{"-verify-bounds", "-scenarios", "5", "-events", "20", "-fault-seed", "99"}, strings.NewReader(fig4), &other); err != nil {
		t.Fatal(err)
	}
	if got == other.String() {
		t.Fatal("different fault seeds produced identical reports")
	}
}

func TestRunEmitCGuards(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-c", "-guards"}, strings.NewReader(fig4), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{
		"extern void fcpn_overflow(const char *place, int count, int bound);",
		"fcpn_overflow(",
	} {
		if !strings.Contains(got, frag) {
			t.Fatalf("guarded C missing %q:\n%s", frag, got)
		}
	}
	// Without -guards the handler must not appear.
	var plain strings.Builder
	if err := run([]string{"-c"}, strings.NewReader(fig4), &plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "fcpn_overflow") {
		t.Fatal("ungated overflow guard in plain C output")
	}
}

// TestRunTimingSafety exercises -mk end to end: calibrated deadline,
// satisfied verdict, per-kind margin lines, determinism across runs, and
// a non-zero exit when the constraint cannot hold.
func TestRunTimingSafety(t *testing.T) {
	var out strings.Builder
	args := []string{"-mk", "9,10", "-margin", "burst,overrun", "-events", "30"}
	if err := run(args, strings.NewReader(fig4), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{
		"deadline calibrated to",
		"timing: (9,10) satisfied over",
		"margin burst:",
		"margin overrun:",
	} {
		if !strings.Contains(got, frag) {
			t.Fatalf("output missing %q:\n%s", frag, got)
		}
	}
	var again strings.Builder
	if err := run(args, strings.NewReader(fig4), &again); err != nil {
		t.Fatal(err)
	}
	if got != again.String() {
		t.Fatalf("timing run is not reproducible:\n%s\nvs\n%s", got, again.String())
	}

	// A 1-cycle budget misses every event: the verdict prints and the
	// command exits non-zero.
	var failed strings.Builder
	err := run([]string{"-mk", "9,10", "-deadline", "1"}, strings.NewReader(fig4), &failed)
	if err == nil || !strings.Contains(err.Error(), "violated") {
		t.Fatalf("1-cycle deadline must violate (9,10), got err=%v", err)
	}
	if !strings.Contains(failed.String(), "VIOLATED") {
		t.Fatalf("violation verdict not printed:\n%s", failed.String())
	}

	// Bad inputs surface as flag errors.
	if err := run([]string{"-mk", "12,4"}, strings.NewReader(fig4), &out); err == nil {
		t.Fatal("-mk 12,4 must be rejected")
	}
	if err := run([]string{"-mk", "1,2", "-margin", "bogus"}, strings.NewReader(fig4), &out); err == nil {
		t.Fatal("-margin bogus must be rejected")
	}
}

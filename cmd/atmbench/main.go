// Command atmbench regenerates Table I of the paper: the QSS
// implementation of the ATM server versus the functional five-task
// partitioning, on the 50-cell testbench.
//
// With -faults it instead runs the robustness experiment: the same
// testbench replayed under seeded fault scenarios (event bursts,
// duplicates, losses, tick jitter, task overruns) against a bounded
// ingress queue, verifying the statically computed buffer bounds at
// runtime. The report is deterministic: the same seed reproduces it
// byte-for-byte.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fcpn/internal/atm"
	"fcpn/internal/rtos"
	"fcpn/internal/sim"
	"fcpn/internal/timing"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "atmbench:", err)
		os.Exit(1)
	}
}

// run is the testable core of the command.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("atmbench", flag.ContinueOnError)
	cells := fs.Int("cells", 50, "number of ATM cells in the testbench")
	seed := fs.Uint64("seed", 0xA7151915, "workload seed")
	activation := fs.Int64("activation", 150, "RTOS task activation cost (cycles)")
	asJSON := fs.Bool("json", false, "emit the result as JSON")
	faults := fs.Bool("faults", false, "run the fault-injection robustness experiment instead of Table I")
	scenarios := fs.Int("scenarios", 10, "with -faults: number of seeded fault scenarios")
	faultSeed := fs.Uint64("fault-seed", 0xFA117, "with -faults: scenario seed")
	burstPct := fs.Int("burst-pct", 0, "with -faults: percent of cells that arrive in bursts (0 = mixed catalogue)")
	burstExtra := fs.Int("burst-extra", 3, "with -faults: extra back-to-back copies per bursting cell")
	dupPct := fs.Int("dup-pct", 0, "with -faults: percent of events delivered twice")
	dropPct := fs.Int("drop-pct", 0, "with -faults: percent of events lost")
	tickJitter := fs.Int64("tick-jitter", 0, "with -faults: reorder ticks by +-N time units")
	queueCap := fs.Int("queue-cap", 0, "with -faults: ingress event-queue capacity (0 = unbounded)")
	policyName := fs.String("queue-policy", "drop-newest", "with -faults: overflow policy (drop-newest, drop-oldest, reject)")
	deadline := fs.Int64("deadline", 0, "with -faults: per-event response deadline in cycles (0 = off)")
	overrunPct := fs.Int("overrun-pct", 0, "with -faults: worst-case per-dispatch task overrun in percent")
	stepBudget := fs.Int("step-budget", 0, "with -faults: interpreter step budget per scenario (0 = default)")
	cyclesPerTick := fs.Int64("cycles-per-tick", 0, "with -faults: cycles per workload time unit (0 = default)")
	mkFlag := fs.String("mk", "", "with -faults: weakly-hard (m,k) constraint per scenario, e.g. -mk 9,10")
	marginFlag := fs.String("margin", "", "with -faults -mk: comma-separated overload kinds to margin-search (burst,jitter,drop,overrun)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var mk timing.Constraint
	var marginKinds []sim.OverloadKind
	if *mkFlag != "" {
		var err error
		if mk, err = timing.Parse(*mkFlag); err != nil {
			return err
		}
		if *marginFlag != "" {
			for _, name := range strings.Split(*marginFlag, ",") {
				kind, err := sim.ParseOverloadKind(name)
				if err != nil {
					return err
				}
				marginKinds = append(marginKinds, kind)
			}
		}
	} else if *marginFlag != "" {
		return fmt.Errorf("-margin requires -mk")
	}

	wl := atm.DefaultWorkload()
	wl.Cells = *cells
	wl.Seed = *seed
	cost := rtos.DefaultCostModel()
	cost.Activation = *activation

	if *faults {
		policy, err := rtos.ParsePolicy(*policyName)
		if err != nil {
			return err
		}
		rep, err := atm.RunRobustness(atm.RobustnessConfig{
			Workload:      wl,
			CyclesPerTick: *cyclesPerTick,
			Scenarios:     *scenarios,
			FaultSeed:     *faultSeed,
			BurstPct:      *burstPct,
			BurstExtra:    *burstExtra,
			DupPct:        *dupPct,
			DropPct:       *dropPct,
			TickJitter:    *tickJitter,
			QueueCapacity: *queueCap,
			Policy:        policy,
			Deadline:      *deadline,
			OverrunPct:    *overrunPct,
			StepBudget:    *stepBudget,
			MK:            mk,
			MarginKinds:   marginKinds,
		}, cost)
		if err != nil {
			return err
		}
		if *asJSON {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(rep)
		}
		fmt.Fprint(stdout, rep.Format())
		if v := rep.TotalViolations(); v > 0 {
			return fmt.Errorf("%d static buffer bound violation(s)", v)
		}
		fmt.Fprintln(stdout, "\nall static buffer bounds held under fault injection")
		return nil
	}

	res, err := atm.RunTableI(wl, cost)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Fprintf(stdout, "Table I reproduction (testbench of %d ATM cells)\n\n", *cells)
	fmt.Fprint(stdout, res.Format())
	fmt.Fprintf(stdout, "\nValid schedule: %d finite complete cycles\n", res.QSS.Cycles)
	fmt.Fprintf(stdout, "Server stats: %+v\n", res.Stats)
	ratio := float64(res.Functional.ClockCycles) / float64(res.QSS.ClockCycles)
	fmt.Fprintf(stdout, "Cycle ratio (functional/QSS): %.2f (paper: 249726/197526 = 1.26)\n", ratio)
	locRatio := float64(res.Functional.LinesOfC) / float64(res.QSS.LinesOfC)
	fmt.Fprintf(stdout, "Code size ratio (functional/QSS): %.2f (paper: 2187/1664 = 1.31)\n", locRatio)
	return nil
}

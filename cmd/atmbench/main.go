// Command atmbench regenerates Table I of the paper: the QSS
// implementation of the ATM server versus the functional five-task
// partitioning, on the 50-cell testbench.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"fcpn/internal/atm"
	"fcpn/internal/rtos"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "atmbench:", err)
		os.Exit(1)
	}
}

// run is the testable core of the command.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("atmbench", flag.ContinueOnError)
	cells := fs.Int("cells", 50, "number of ATM cells in the testbench")
	seed := fs.Uint64("seed", 0xA7151915, "workload seed")
	activation := fs.Int64("activation", 150, "RTOS task activation cost (cycles)")
	asJSON := fs.Bool("json", false, "emit the result as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}

	wl := atm.DefaultWorkload()
	wl.Cells = *cells
	wl.Seed = *seed
	cost := rtos.DefaultCostModel()
	cost.Activation = *activation

	res, err := atm.RunTableI(wl, cost)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Fprintf(stdout, "Table I reproduction (testbench of %d ATM cells)\n\n", *cells)
	fmt.Fprint(stdout, res.Format())
	fmt.Fprintf(stdout, "\nValid schedule: %d finite complete cycles\n", res.QSS.Cycles)
	fmt.Fprintf(stdout, "Server stats: %+v\n", res.Stats)
	ratio := float64(res.Functional.ClockCycles) / float64(res.QSS.ClockCycles)
	fmt.Fprintf(stdout, "Cycle ratio (functional/QSS): %.2f (paper: 249726/197526 = 1.26)\n", ratio)
	locRatio := float64(res.Functional.LinesOfC) / float64(res.QSS.LinesOfC)
	fmt.Fprintf(stdout, "Code size ratio (functional/QSS): %.2f (paper: 2187/1664 = 1.31)\n", locRatio)
	return nil
}

package main

import (
	"strings"
	"testing"
)

func TestRunTableI(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-cells", "20"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{
		"Table I reproduction (testbench of 20 ATM cells)",
		"Number of tasks", "Lines of C code", "Clock cycles",
		"Cycle ratio (functional/QSS):",
	} {
		if !strings.Contains(got, frag) {
			t.Fatalf("output missing %q:\n%s", frag, got)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-cells", "notanumber"}, &out); err == nil {
		t.Fatal("flag error not propagated")
	}
}

func TestRunJSON(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-cells", "10", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{`"QSS"`, `"Functional"`, `"Tasks": 2`, `"Tasks": 5`} {
		if !strings.Contains(got, frag) {
			t.Fatalf("JSON missing %q:\n%s", frag, got)
		}
	}
}

func TestRunFaultsDeterministic(t *testing.T) {
	args := []string{"-faults", "-cells", "20", "-scenarios", "4",
		"-queue-cap", "8", "-queue-policy", "drop-oldest",
		"-deadline", "20000", "-overrun-pct", "10"}
	var first, second strings.Builder
	if err := run(args, &first); err != nil {
		t.Fatal(err)
	}
	got := first.String()
	for _, frag := range []string{
		"robustness of net", "8 (drop-oldest)", "scenario", "violations",
		"all static buffer bounds held under fault injection",
	} {
		if !strings.Contains(got, frag) {
			t.Fatalf("output missing %q:\n%s", frag, got)
		}
	}
	if err := run(args, &second); err != nil {
		t.Fatal(err)
	}
	if got != second.String() {
		t.Fatalf("same seed produced different reports:\n--- first\n%s--- second\n%s", got, second.String())
	}
}

func TestRunFaultsCustomInjectors(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-faults", "-cells", "15", "-scenarios", "3",
		"-burst-pct", "40", "-drop-pct", "10", "-tick-jitter", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "custom-01") {
		t.Fatalf("custom injector scenarios not used:\n%s", out.String())
	}
}

func TestRunFaultsBadPolicy(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-faults", "-queue-policy", "fifo"}, &out); err == nil {
		t.Fatal("unknown policy not rejected")
	}
}

// TestRunFaultsTimingSafety pins the -mk/-margin surface: the timing
// section appears in the text report with per-scenario verdicts and one
// margin line per kind, the JSON report carries the same numbers, and the
// flag pairing is validated.
func TestRunFaultsTimingSafety(t *testing.T) {
	args := []string{"-faults", "-cells", "20", "-scenarios", "3",
		"-mk", "8,10", "-margin", "burst,overrun"}
	var out strings.Builder
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{
		"weakly-hard timing safety (8,10), deadline",
		"margin burst:",
		"margin overrun:",
	} {
		if !strings.Contains(got, frag) {
			t.Fatalf("output missing %q:\n%s", frag, got)
		}
	}

	var jsonOut strings.Builder
	if err := run(append(args, "-json"), &jsonOut); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`"Timing"`, `"MK": "(8,10)"`, `"kind": "burst"`, `"kind": "overrun"`} {
		if !strings.Contains(jsonOut.String(), frag) {
			t.Fatalf("JSON missing %q:\n%s", frag, jsonOut.String())
		}
	}

	if err := run([]string{"-faults", "-margin", "burst"}, &out); err == nil {
		t.Fatal("-margin without -mk must error")
	}
	if err := run([]string{"-faults", "-mk", "11,10"}, &out); err == nil {
		t.Fatal("-mk 11,10 must be rejected")
	}
}

package main

import (
	"strings"
	"testing"
)

func TestRunTableI(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-cells", "20"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{
		"Table I reproduction (testbench of 20 ATM cells)",
		"Number of tasks", "Lines of C code", "Clock cycles",
		"Cycle ratio (functional/QSS):",
	} {
		if !strings.Contains(got, frag) {
			t.Fatalf("output missing %q:\n%s", frag, got)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-cells", "notanumber"}, &out); err == nil {
		t.Fatal("flag error not propagated")
	}
}

func TestRunJSON(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-cells", "10", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{`"QSS"`, `"Functional"`, `"Tasks": 2`, `"Tasks": 5`} {
		if !strings.Contains(got, frag) {
			t.Fatalf("JSON missing %q:\n%s", frag, got)
		}
	}
}

// Command netinfo prints a structural and behavioural report for a Petri
// net in the textual format: node counts, subclass, choices, invariants,
// boundedness and (for bounded nets) deadlock/liveness, siphons and traps,
// and — for free-choice nets — quasi-static schedulability. With -json it
// instead emits the analysis engine's deterministic NetReport (the same
// document type qssd produces per net).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fcpn"
	"fcpn/internal/core"
	"fcpn/internal/invariant"
	"fcpn/internal/petri"
	"fcpn/internal/reach"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "netinfo:", err)
		os.Exit(1)
	}
}

// run is the testable core of the command.
func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("netinfo", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit the analysis-engine report as JSON")
	dot := fs.Bool("dot", false, "emit Graphviz dot instead of the report")
	simplify := fs.Bool("simplify", false, "apply Murata's reduction rules and print the reduced net")
	maxStates := fs.Int("max-states", 100000, "state cap for behavioural analysis")
	if err := fs.Parse(args); err != nil {
		return err
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	n, err := fcpn.Parse(in)
	if err != nil {
		return err
	}
	if *simplify {
		red, trace := petri.Simplify(n)
		for _, step := range trace {
			fmt.Fprintln(stdout, "#", step)
		}
		fmt.Fprint(stdout, petri.Format(red))
		return nil
	}
	if *dot {
		fmt.Fprint(stdout, n.DOT())
		return nil
	}
	if *asJSON {
		// The deterministic engine report: same type as one `qssd` batch
		// entry, so tooling can consume both uniformly.
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(fcpn.Analyze(n, fcpn.Options{}))
	}
	report(stdout, n, *maxStates)
	return nil
}

func report(w io.Writer, n *petri.Net, maxStates int) {
	fmt.Fprintf(w, "net %q: %d places, %d transitions, %d arcs\n",
		n.Name(), n.NumPlaces(), n.NumTransitions(), len(n.Arcs()))
	fmt.Fprintf(w, "class: %s\n", n.Classify())
	fmt.Fprintf(w, "sources: %s\n", nameList(n, n.SourceTransitions()))
	fmt.Fprintf(w, "sinks: %s\n", nameList(n, n.SinkTransitions()))

	choices := n.FreeChoiceSets()
	fmt.Fprintf(w, "free choices: %d\n", len(choices))
	for _, c := range choices {
		var places []string
		for _, p := range c.Places {
			places = append(places, n.PlaceName(p))
		}
		fmt.Fprintf(w, "  %s -> %s\n", strings.Join(places, "+"), nameList(n, c.Transitions))
	}

	tis, err := invariant.TInvariants(n, invariant.Options{})
	if err != nil {
		fmt.Fprintf(w, "T-invariants: %v\n", err)
	} else {
		fmt.Fprintf(w, "T-invariants (minimal): %d, consistent: %v\n", len(tis), invariant.Consistent(n, tis))
		for _, ti := range tis {
			fmt.Fprintf(w, "  %v\n", ti.Counts)
		}
	}
	pis, err := invariant.PInvariants(n, invariant.Options{})
	if err != nil {
		fmt.Fprintf(w, "P-invariants: %v\n", err)
	} else {
		fmt.Fprintf(w, "P-invariants (minimal): %d, conservative: %v\n", len(pis), invariant.Conservative(n, pis))
	}

	if rep, err := invariant.RankTheoremFC(n, invariant.Options{}); err == nil {
		fmt.Fprintf(w, "rank theorem (FC): rank(D)=%d clusters=%d well-formed=%v\n",
			rep.Rank, rep.Clusters, rep.WellFormed)
	}

	bounded, err := reach.Boundedness(n, n.InitialMarking())
	switch {
	case err != nil:
		fmt.Fprintf(w, "boundedness: %v\n", err)
	case bounded:
		k, _ := reach.KBound(n, n.InitialMarking())
		fmt.Fprintf(w, "bounded: yes (k = %d)\n", k)
		dead, derr := reach.HasDeadlock(n, n.InitialMarking(), reach.Options{MaxStates: maxStates})
		if derr == nil {
			fmt.Fprintf(w, "deadlock reachable: %v\n", dead)
		}
		live, lerr := reach.Live(n, n.InitialMarking(), reach.Options{MaxStates: maxStates})
		if lerr == nil {
			fmt.Fprintf(w, "live: %v\n", live)
		}
	default:
		fmt.Fprintln(w, "bounded: no (under unconstrained firing; quasi-static scheduling may still bound it)")
	}

	siphons := reach.MinimalSiphons(n, 64)
	fmt.Fprintf(w, "minimal siphons: %d, Commoner holds: %v\n",
		len(siphons), reach.CommonerHolds(n, n.InitialMarking(), 64))

	if n.IsFreeChoice() {
		s, err := core.Solve(n, core.Options{})
		if err != nil {
			fmt.Fprintf(w, "quasi-static schedulable: no (%v)\n", err)
		} else {
			fmt.Fprintf(w, "quasi-static schedulable: yes (%d cycles from %d allocations)\n",
				len(s.Cycles), s.AllocationCount)
			tp, err := core.PartitionTasks(n, core.Options{})
			if err == nil {
				fmt.Fprintf(w, "tasks: %d\n", tp.NumTasks())
			}
		}
	}
}

func nameList(n *petri.Net, ts []petri.Transition) string {
	if len(ts) == 0 {
		return "(none)"
	}
	return strings.Join(n.SequenceNames(ts), " ")
}

// Command netinfo prints a structural and behavioural report for a Petri
// net in the textual format: node counts, subclass, choices, invariants,
// boundedness and (for bounded nets) deadlock/liveness, siphons and traps,
// and — for free-choice nets — quasi-static schedulability. With -json it
// instead emits the analysis engine's deterministic NetReport (the same
// document type qssd produces per net). With -phases the human report is
// followed by a per-phase timing table (see docs/TRACING.md) covering the
// invariant, reachability and scheduling work the report performed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fcpn"
	"fcpn/internal/core"
	"fcpn/internal/invariant"
	"fcpn/internal/petri"
	"fcpn/internal/reach"
	"fcpn/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "netinfo:", err)
		os.Exit(1)
	}
}

// run is the testable core of the command.
func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("netinfo", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit the analysis-engine report as JSON")
	dot := fs.Bool("dot", false, "emit Graphviz dot instead of the report")
	simplify := fs.Bool("simplify", false, "apply Murata's reduction rules and print the reduced net")
	maxStates := fs.Int("max-states", 100000, "state cap for behavioural analysis")
	phases := fs.Bool("phases", false, "append a per-phase timing table to the report")
	if err := fs.Parse(args); err != nil {
		return err
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	n, err := fcpn.Parse(in)
	if err != nil {
		return err
	}
	if *simplify {
		red, trace := petri.Simplify(n)
		for _, step := range trace {
			fmt.Fprintln(stdout, "#", step)
		}
		fmt.Fprint(stdout, petri.Format(red))
		return nil
	}
	if *dot {
		fmt.Fprint(stdout, n.DOT())
		return nil
	}
	if *asJSON {
		// The deterministic engine report: same type as one `qssd` batch
		// entry, so tooling can consume both uniformly.
		rep, err := fcpn.Analyze(n, fcpn.Options{})
		if err != nil {
			return err
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	var tr *trace.Tracer
	if *phases {
		tr = trace.New()
	}
	report(stdout, n, *maxStates, tr)
	if *phases {
		printPhases(stdout, tr.Report())
	}
	return nil
}

// printPhases renders a tracer report as an aligned table; detail phases
// (nested inside a top-level phase, or cache counters) are indented.
func printPhases(w io.Writer, rep *trace.Report) {
	if rep == nil || len(rep.Phases) == 0 {
		return
	}
	fmt.Fprintf(w, "\nphase timings (total %.3f ms across top-level phases):\n", rep.TopTotalMS())
	fmt.Fprintf(w, "  %-28s %8s %12s %12s %12s\n", "phase", "count", "total ms", "min ms", "max ms")
	for _, p := range rep.Phases {
		name := p.Name
		if p.Detail {
			name = "  " + name
		}
		fmt.Fprintf(w, "  %-28s %8d %12.3f %12.3f %12.3f\n",
			name, p.Count, p.TotalMS, p.MinMS, p.MaxMS)
	}
}

// report prints the human-readable analysis. tr may be nil; when set,
// each section runs under a top-level span and the inner invariant,
// reachability and scheduling calls record their detail phases into it.
func report(w io.Writer, n *petri.Net, maxStates int, tr *trace.Tracer) {
	fmt.Fprintf(w, "net %q: %d places, %d transitions, %d arcs\n",
		n.Name(), n.NumPlaces(), n.NumTransitions(), len(n.Arcs()))
	fmt.Fprintf(w, "class: %s\n", n.Classify())
	fmt.Fprintf(w, "sources: %s\n", nameList(n, n.SourceTransitions()))
	fmt.Fprintf(w, "sinks: %s\n", nameList(n, n.SinkTransitions()))

	choices := n.FreeChoiceSets()
	fmt.Fprintf(w, "free choices: %d\n", len(choices))
	for _, c := range choices {
		var places []string
		for _, p := range c.Places {
			places = append(places, n.PlaceName(p))
		}
		fmt.Fprintf(w, "  %s -> %s\n", strings.Join(places, "+"), nameList(n, c.Transitions))
	}

	sp := tr.Start("invariant/tsemiflows")
	tis, err := invariant.TInvariants(n, invariant.Options{Trace: tr})
	sp.End()
	if err != nil {
		fmt.Fprintf(w, "T-invariants: %v\n", err)
	} else {
		fmt.Fprintf(w, "T-invariants (minimal): %d, consistent: %v\n", len(tis), invariant.Consistent(n, tis))
		for _, ti := range tis {
			fmt.Fprintf(w, "  %v\n", ti.Counts)
		}
	}
	sp = tr.Start("invariant/psemiflows")
	pis, err := invariant.PInvariants(n, invariant.Options{Trace: tr})
	sp.End()
	if err != nil {
		fmt.Fprintf(w, "P-invariants: %v\n", err)
	} else {
		fmt.Fprintf(w, "P-invariants (minimal): %d, conservative: %v\n", len(pis), invariant.Conservative(n, pis))
	}

	if rep, err := invariant.RankTheoremFC(n, invariant.Options{}); err == nil {
		fmt.Fprintf(w, "rank theorem (FC): rank(D)=%d clusters=%d well-formed=%v\n",
			rep.Rank, rep.Clusters, rep.WellFormed)
	}

	sp = tr.Start("reach/coverability")
	bounded, err := reach.Boundedness(n, n.InitialMarking())
	var k int
	if err == nil && bounded {
		k, _ = reach.KBound(n, n.InitialMarking())
	}
	sp.End()
	switch {
	case err != nil:
		fmt.Fprintf(w, "boundedness: %v\n", err)
	case bounded:
		fmt.Fprintf(w, "bounded: yes (k = %d)\n", k)
		sp = tr.Start("reach/deadlock")
		dead, derr := reach.HasDeadlock(n, n.InitialMarking(), reach.Options{MaxStates: maxStates, Trace: tr})
		sp.End()
		if derr == nil {
			fmt.Fprintf(w, "deadlock reachable: %v\n", dead)
		}
		sp = tr.Start("reach/liveness")
		live, lerr := reach.Live(n, n.InitialMarking(), reach.Options{MaxStates: maxStates, Trace: tr})
		sp.End()
		if lerr == nil {
			fmt.Fprintf(w, "live: %v\n", live)
		}
	default:
		fmt.Fprintln(w, "bounded: no (under unconstrained firing; quasi-static scheduling may still bound it)")
	}

	sp = tr.Start("reach/siphons")
	siphons := reach.MinimalSiphons(n, 64)
	commoner := reach.CommonerHolds(n, n.InitialMarking(), 64)
	sp.End()
	fmt.Fprintf(w, "minimal siphons: %d, Commoner holds: %v\n", len(siphons), commoner)

	if n.IsFreeChoice() {
		sp = tr.Start("core/solve")
		s, err := core.Solve(n, core.Options{Trace: tr})
		sp.End()
		if err != nil {
			fmt.Fprintf(w, "quasi-static schedulable: no (%v)\n", err)
		} else {
			fmt.Fprintf(w, "quasi-static schedulable: yes (%d cycles from %d allocations)\n",
				len(s.Cycles), s.AllocationCount)
			sp = tr.Start("core/tasks")
			tp, err := core.PartitionTasks(n, core.Options{Trace: tr})
			sp.End()
			if err == nil {
				fmt.Fprintf(w, "tasks: %d\n", tp.NumTasks())
			}
		}
	}
}

func nameList(n *petri.Net, ts []petri.Transition) string {
	if len(ts) == 0 {
		return "(none)"
	}
	return strings.Join(n.SequenceNames(ts), " ")
}

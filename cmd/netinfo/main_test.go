package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"fcpn"
)

const fig3a = `
net figure3a
trans t1
trans t2
trans t3
trans t4
trans t5
place p1
place p2
place p3
arc t1 -> p1
arc p1 -> t2 -> p2 -> t4
arc p1 -> t3 -> p3 -> t5
`

const markedCycle = `
net cycle
place p 1
place q
trans t1
trans t2
arc p -> t1 -> q -> t2 -> p
`

func TestReportOpenNet(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader(fig3a), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{
		`net "figure3a": 3 places, 5 transitions`,
		"class: free-choice",
		"sources: t1",
		"free choices: 1",
		"p1 -> t2 t3",
		"T-invariants (minimal): 2, consistent: true",
		"bounded: no",
		"quasi-static schedulable: yes (2 cycles from 2 allocations)",
		"tasks: 1",
		"well-formed=false",
	} {
		if !strings.Contains(got, frag) {
			t.Fatalf("report missing %q:\n%s", frag, got)
		}
	}
}

func TestReportClosedCycle(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader(markedCycle), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, frag := range []string{
		"class: marked graph",
		"bounded: yes (k = 1)",
		"deadlock reachable: false",
		"live: true",
		"well-formed=true",
		"minimal siphons: 1, Commoner holds: true",
	} {
		if !strings.Contains(got, frag) {
			t.Fatalf("report missing %q:\n%s", frag, got)
		}
	}
}

// TestJSONGolden pins the -json engine report for figure 5 to the golden
// file. The report is deterministic by the engine's contract, so any diff
// here is a real behaviour change — regenerate with
//
//	go run ./cmd/netinfo -json examples/nets/figure5.pn > cmd/netinfo/testdata/figure5.json
func TestJSONGolden(t *testing.T) {
	f, err := os.Open("../../examples/nets/figure5.pn")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out strings.Builder
	if err := run([]string{"-json"}, f, &out); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/figure5.json")
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Fatalf("-json report diverged from golden file:\ngot:\n%s\nwant:\n%s", out.String(), want)
	}
}

func TestJSONUsesNetReport(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-json"}, strings.NewReader(fig3a), &out); err != nil {
		t.Fatal(err)
	}
	var rep fcpn.NetReport
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("output is not a NetReport: %v\n%s", err, out.String())
	}
	if rep.Name != "figure3a" || !rep.Schedulable || rep.Hash == "" {
		t.Fatalf("bad report: %+v", rep)
	}
}

func TestDOTOutput(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-dot"}, strings.NewReader(fig3a), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "digraph") {
		t.Fatalf("not dot output:\n%s", out.String())
	}
}

func TestRunErrorPaths(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader("nonsense"), &out); err == nil {
		t.Fatal("parse error not propagated")
	}
	if err := run([]string{"/no/such/file"}, nil, &out); err == nil {
		t.Fatal("missing file not propagated")
	}
	if err := run([]string{"-badflag"}, strings.NewReader(fig3a), &out); err == nil {
		t.Fatal("flag error not propagated")
	}
}

func TestSimplifyFlag(t *testing.T) {
	// A series chain: the fused net and the rewrite trace are printed.
	chain := `
net chain
trans src
trans a
trans b
place p1
place p2
place p3
arc src -> p1 -> a -> p2 -> b -> p3
`
	var out strings.Builder
	if err := run([]string{"-simplify"}, strings.NewReader(chain), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "# FST: fuse a·b") {
		t.Fatalf("missing trace:\n%s", got)
	}
	if !strings.Contains(got, "trans a+b") {
		t.Fatalf("missing fused transition:\n%s", got)
	}
}

// Command fcpnfmt canonicalises Petri-net files in the textual format:
// it parses, validates, and re-serialises deterministically (places, then
// transitions, then arcs, each in declaration order). With -w it rewrites
// the files in place; otherwise the formatted text goes to stdout.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fcpn"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fcpnfmt:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("fcpnfmt", flag.ContinueOnError)
	write := fs.Bool("w", false, "rewrite files in place instead of printing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		n, err := fcpn.Parse(stdin)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, fcpn.Format(n))
		return nil
	}
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		n, err := fcpn.ParseString(string(data))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		text := fcpn.Format(n)
		if *write {
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				return err
			}
			continue
		}
		fmt.Fprint(stdout, text)
	}
	return nil
}

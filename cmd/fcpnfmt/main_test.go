package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFormatStdin(t *testing.T) {
	var out strings.Builder
	in := "trans t\nplace p 2\narc   p ->   t\n"
	if err := run(nil, strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	want := "place p 2\ntrans t\narc p -> t\n"
	if out.String() != want {
		t.Fatalf("got %q want %q", out.String(), want)
	}
}

func TestFormatInPlace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.pn")
	if err := os.WriteFile(path, []byte("trans t\nplace p\narc p->t\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	// "p->t" without spaces is a parse error: propagate it.
	if err := run([]string{"-w", path}, nil, &out); err == nil {
		t.Fatal("expected parse error for missing spaces")
	}
	if err := os.WriteFile(path, []byte("trans t\nplace p\narc p -> t\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-w", path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "place p\ntrans t\narc p -> t\n" {
		t.Fatalf("rewritten = %q", data)
	}
}

func TestMissingFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"/no/such.pn"}, nil, &out); err == nil {
		t.Fatal("missing file accepted")
	}
}

// Command phasegate is the phase-level performance regression gate: it
// distils the engine-lifetime phase trace out of a qssd report into a
// small committed baseline (-write), and on later runs compares a fresh
// report against that baseline, failing when any phase's total time has
// regressed beyond the allowed factor.
//
// Usage:
//
//	qssd -gen 20 -gen-seed 1 -workers 4 -o run.json
//	phasegate -report run.json -baseline BENCH_phases.json -write   # refresh
//	phasegate -report run.json -baseline BENCH_phases.json          # gate
//
// The gate compares both total milliseconds and invocation counts per
// phase. Counts are deterministic for a fixed corpus, so the count gate
// (-max-count-regress) is tight: it catches algorithmic regressions —
// e.g. the reduction-class dedup silently degrading so every member is
// checked from scratch again — that a host-relative time factor could
// absorb, and it applies to every baseline phase: a detail phase whose
// total sits under -floor-ms (core/dedup/wl when nearly all reductions
// dodge the WL run) still has its count gated. Only the time comparison
// honours the floor — sub-millisecond totals are dominated by timer
// noise — and the default time factor of 2 leaves room for host-speed
// differences while still catching the order-of-magnitude slips the
// trace exists to expose. Plain JSON comparison, no external
// dependencies.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"fcpn/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "phasegate:", err)
		os.Exit(1)
	}
}

// qssdReport is the slice of the qssd JSON document the gate needs: the
// host's parallelism and the engine-lifetime trace.
type qssdReport struct {
	GoMaxProcs int `json:"gomaxprocs"`
	Stats      struct {
		Trace *trace.Report `json:"trace"`
	} `json:"stats"`
}

// baseline is the committed BENCH_phases.json document.
type baseline struct {
	// GoMaxProcs records the host the baseline was taken on, for reading
	// the numbers; the gate itself is host-relative only through the
	// regression factor.
	GoMaxProcs int          `json:"gomaxprocs"`
	Phases     []phaseEntry `json:"phases"`
}

type phaseEntry struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
	Detail  bool    `json:"detail,omitempty"`
}

// run is the testable core of the command.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("phasegate", flag.ContinueOnError)
	reportPath := fs.String("report", "", "qssd JSON report for the current run (required)")
	basePath := fs.String("baseline", "BENCH_phases.json", "committed phase baseline")
	write := fs.Bool("write", false, "write/refresh the baseline from -report instead of gating")
	factor := fs.Float64("max-regress", 2.0, "fail when a phase exceeds baseline total by this factor")
	countFactor := fs.Float64("max-count-regress", 1.25, "fail when a phase's count exceeds baseline by this factor (0 disables)")
	floorMS := fs.Float64("floor-ms", 5.0, "ignore phases whose baseline total is below this many ms")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *reportPath == "" {
		return fmt.Errorf("-report is required")
	}

	var rep qssdReport
	if err := readJSON(*reportPath, &rep); err != nil {
		return err
	}
	if rep.Stats.Trace == nil || len(rep.Stats.Trace.Phases) == 0 {
		return fmt.Errorf("%s: report has no stats.trace block (old qssd?)", *reportPath)
	}
	current := distill(&rep)

	if *write {
		f, err := os.Create(*basePath)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(current); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s: %d phases (gomaxprocs %d)\n",
			*basePath, len(current.Phases), current.GoMaxProcs)
		return nil
	}

	var base baseline
	if err := readJSON(*basePath, &base); err != nil {
		return err
	}
	cur := make(map[string]phaseEntry, len(current.Phases))
	for _, p := range current.Phases {
		cur[p.Name] = p
	}

	// The time gate only applies above the floor — sub-millisecond phases
	// are timer noise. Counts are deterministic for a fixed corpus, so the
	// count gate applies to every baseline phase regardless of floor: a
	// detail phase like core/dedup/wl can hold microseconds yet its count
	// is exactly the signal (how many reductions escalated to a full WL
	// run) the gate exists to pin.
	var failures []string
	checked := 0
	for _, b := range base.Phases {
		gateTime := b.TotalMS >= *floorMS
		gateCount := *countFactor > 0
		if !gateTime && !gateCount {
			continue
		}
		checked++
		c, ok := cur[b.Name]
		if !ok {
			failures = append(failures,
				fmt.Sprintf("phase %s: in baseline (%.2f ms ×%d) but absent from this run", b.Name, b.TotalMS, b.Count))
			continue
		}
		status := "ok"
		if gateTime {
			limit := b.TotalMS * *factor
			if c.TotalMS > limit {
				status = "FAIL"
				failures = append(failures,
					fmt.Sprintf("phase %s: %.2f ms vs baseline %.2f ms (limit %.2f ms at %gx)",
						b.Name, c.TotalMS, b.TotalMS, limit, *factor))
			}
		}
		if gateCount && float64(c.Count) > float64(b.Count)**countFactor {
			status = "FAIL"
			failures = append(failures,
				fmt.Sprintf("phase %s: count %d vs baseline %d (limit %.0f at %gx)",
					b.Name, c.Count, b.Count, float64(b.Count)**countFactor, *countFactor))
		}
		fmt.Fprintf(stdout, "%-28s %10.2f ms ×%-6d  baseline %10.2f ms ×%-6d  %s\n",
			b.Name, c.TotalMS, c.Count, b.TotalMS, b.Count, status)
	}
	if checked == 0 {
		return fmt.Errorf("baseline %s has no phases above the %.1f ms floor and the count gate is disabled", *basePath, *floorMS)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(stdout, "regression:", f)
		}
		return fmt.Errorf("%d phase(s) regressed beyond the allowed factors", len(failures))
	}
	fmt.Fprintf(stdout, "phase gate passed: %d phase(s) within %gx time / %gx count of baseline\n",
		checked, *factor, *countFactor)
	return nil
}

func distill(rep *qssdReport) baseline {
	b := baseline{GoMaxProcs: rep.GoMaxProcs}
	for _, p := range rep.Stats.Trace.Phases {
		b.Phases = append(b.Phases, phaseEntry{
			Name:    p.Name,
			Count:   p.Count,
			TotalMS: p.TotalMS,
			Detail:  p.Detail,
		})
	}
	return b
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

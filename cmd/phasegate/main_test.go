package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// fakeReport writes a minimal qssd document: only the fields the gate
// reads.
func fakeReport(t *testing.T, dir, name string, solveMS, checkMS float64, checkCount int) string {
	t.Helper()
	doc := `{
  "gomaxprocs": 1,
  "stats": {
    "trace": {
      "phases": [
        {"phase": "core/solve", "count": 20, "total_ms": ` + strconv.FormatFloat(solveMS, 'f', -1, 64) + `},
        {"phase": "core/check", "count": ` + strconv.Itoa(checkCount) + `, "total_ms": ` + strconv.FormatFloat(checkMS, 'f', -1, 64) + `, "detail": true},
        {"phase": "petri/classify", "count": 20, "total_ms": 0.3}
      ]
    }
  }
}`
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPhaseGatePassAndFail(t *testing.T) {
	dir := t.TempDir()
	base := fakeReport(t, dir, "base.json", 100, 80, 110)
	baseline := filepath.Join(dir, "BENCH_phases.json")

	var buf bytes.Buffer
	if err := run([]string{"-report", base, "-baseline", baseline, "-write"}, &buf); err != nil {
		t.Fatalf("write baseline: %v", err)
	}

	// Same numbers: must pass.
	buf.Reset()
	if err := run([]string{"-report", base, "-baseline", baseline}, &buf); err != nil {
		t.Fatalf("self-compare must pass: %v\n%s", err, buf.String())
	}

	// 3x regression on core/solve: must fail at the default 2x factor.
	slow := fakeReport(t, dir, "slow.json", 300, 80, 110)
	buf.Reset()
	if err := run([]string{"-report", slow, "-baseline", baseline}, &buf); err == nil {
		t.Fatalf("3x regression must fail the gate:\n%s", buf.String())
	}

	// Count regression at unchanged time: core/check jumping 110 → 580
	// (the dedup silently disabled) must fail even though the time factor
	// would pass it on a faster host.
	uncollapsed := fakeReport(t, dir, "uncollapsed.json", 100, 80, 580)
	buf.Reset()
	if err := run([]string{"-report", uncollapsed, "-baseline", baseline}, &buf); err == nil {
		t.Fatalf("count regression must fail the gate:\n%s", buf.String())
	}
	// ...and -max-count-regress=0 disables exactly that gate.
	buf.Reset()
	if err := run([]string{"-report", uncollapsed, "-baseline", baseline, "-max-count-regress", "0"}, &buf); err != nil {
		t.Fatalf("count gate disabled must pass: %v\n%s", err, buf.String())
	}

	// A TIME regression confined to a sub-floor phase must not gate: with
	// the count gate disabled, a floor above every phase leaves nothing to
	// check and is rejected instead of passing vacuously.
	buf.Reset()
	if err := run([]string{"-report", base, "-baseline", baseline, "-floor-ms", "1000", "-max-count-regress", "0"}, &buf); err == nil {
		t.Fatal("a floor above every phase with the count gate off must be an error, not a pass")
	}
	// But a COUNT regression in a sub-floor phase still gates: the floor
	// only silences the noisy time comparison, counts are deterministic.
	// petri/classify holds 0.3 ms ×20 in the baseline; the same report
	// compared under a floor above everything must pass on counts alone...
	buf.Reset()
	if err := run([]string{"-report", base, "-baseline", baseline, "-floor-ms", "1000"}, &buf); err != nil {
		t.Fatalf("count-only gating must pass on identical counts: %v\n%s", err, buf.String())
	}
	// ...and a count jump must fail even when every phase sits under the
	// floor — the floor never exempts a count regression.
	countOnly := fakeReport(t, dir, "countonly.json", 100, 0.4, 580)
	buf.Reset()
	if err := run([]string{"-report", countOnly, "-baseline", baseline, "-floor-ms", "1000"}, &buf); err == nil {
		t.Fatalf("sub-floor count regression must fail the gate:\n%s", buf.String())
	}
}

func TestPhaseGateMissingTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(path, []byte(`{"stats":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-report", path, "-baseline", filepath.Join(dir, "b.json"), "-write"}, &buf); err == nil {
		t.Fatal("report without a trace block must be rejected")
	}
}

package fcpn

// One benchmark per table and figure of the paper (see DESIGN.md's
// experiment index), plus the ablations. Run with:
//
//	go test -bench=. -benchmem
//
// The benchmarks print the reproduced quantities (schedule sizes, task
// counts, cycle counts, Table I rows) through b.Log / ReportMetric so a
// single bench run regenerates every number in EXPERIMENTS.md.

import (
	"testing"

	"fcpn/internal/atm"
	"fcpn/internal/bdf"
	"fcpn/internal/codegen"
	"fcpn/internal/core"
	"fcpn/internal/figures"
	"fcpn/internal/invariant"
	"fcpn/internal/modem"
	"fcpn/internal/netgen"
	"fcpn/internal/rtos"
	"fcpn/internal/safenet"
	"fcpn/internal/sdf"
	"fcpn/internal/sim"
	"fcpn/internal/trace"
)

// BenchmarkFigure1Classify reproduces Figure 1: the structural free-choice
// test separating net (a) from net (b).
func BenchmarkFigure1Classify(b *testing.B) {
	fc, nfc := figures.Figure1a(), figures.Figure1b()
	for i := 0; i < b.N; i++ {
		if !fc.IsFreeChoice() || nfc.IsFreeChoice() {
			b.Fatal("classification changed")
		}
	}
}

// BenchmarkFigure2RepetitionVector reproduces Figure 2: the minimal
// T-invariant f(σ) = (4,2,1) of the multirate marked graph and its static
// schedule.
func BenchmarkFigure2RepetitionVector(b *testing.B) {
	n := figures.Figure2()
	for i := 0; i < b.N; i++ {
		g, err := sdf.FromPetri(n)
		if err != nil {
			b.Fatal(err)
		}
		q, err := g.RepetitionVector()
		if err != nil || q[0] != 4 || q[1] != 2 || q[2] != 1 {
			b.Fatalf("q = %v (%v)", q, err)
		}
		if _, err := g.Schedule(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3Schedule reproduces Figure 3: solving the schedulable
// net (a) and diagnosing the non-schedulable net (b).
func BenchmarkFigure3Schedule(b *testing.B) {
	a, nb := figures.Figure3a(), figures.Figure3b()
	for i := 0; i < b.N; i++ {
		s, err := core.Solve(a, core.Options{})
		if err != nil || len(s.Cycles) != 2 {
			b.Fatalf("fig3a: %v", err)
		}
		if _, err := core.Solve(nb, core.Options{}); err == nil {
			b.Fatal("fig3b must not be schedulable")
		}
	}
}

// BenchmarkFigure4Codegen reproduces Figure 4 and the Section 4 C listing:
// schedule the weighted net and emit its single-task implementation.
func BenchmarkFigure4Codegen(b *testing.B) {
	n := figures.Figure4()
	for i := 0; i < b.N; i++ {
		syn, err := Synthesize(n, Options{})
		if err != nil {
			b.Fatal(err)
		}
		src := syn.C(true)
		if codegen.LineCount(src) == 0 {
			b.Fatal("empty C")
		}
	}
}

// BenchmarkFigure5Reduce reproduces Figure 5/6: both T-reductions of the
// two-source weighted net, their invariants, and the two-cycle valid
// schedule.
func BenchmarkFigure5Reduce(b *testing.B) {
	n := figures.Figure5()
	for i := 0; i < b.N; i++ {
		allocs, err := core.EnumerateAllocations(n, 0)
		if err != nil || len(allocs) != 2 {
			b.Fatalf("allocations: %v", err)
		}
		for _, a := range allocs {
			red := core.Reduce(n, a)
			if !red.Subnet().Net.IsConflictFree() {
				b.Fatal("reduction not conflict-free")
			}
			rep := core.CheckReduction(n, red, core.Options{})
			if !rep.Schedulable {
				b.Fatalf("reduction must be schedulable: %s", rep.FailReason)
			}
		}
	}
}

// BenchmarkFigure7Diagnose reproduces Figure 7: detecting the inconsistent
// reductions of the non-schedulable net.
func BenchmarkFigure7Diagnose(b *testing.B) {
	n := figures.Figure7()
	for i := 0; i < b.N; i++ {
		_, err := core.Solve(n, core.Options{})
		nse, ok := err.(*core.NotSchedulableError)
		if !ok || nse.Report.Consistent {
			b.Fatalf("unexpected verdict: %v", err)
		}
	}
}

// BenchmarkATMSchedule reproduces the Section 5 scheduling numbers: the
// 49-transition/41-place/11-choice model's 2048 allocations collapsing to
// the distinct T-reductions of the valid schedule, and the 2-task
// partition.
func BenchmarkATMSchedule(b *testing.B) {
	m := atm.New()
	var cycles, tasks int
	for i := 0; i < b.N; i++ {
		s, err := core.Solve(m.Net, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		tp, err := core.PartitionTasks(m.Net, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		cycles, tasks = len(s.Cycles), tp.NumTasks()
	}
	b.ReportMetric(float64(cycles), "cycles-in-schedule")
	b.ReportMetric(float64(tasks), "tasks")
}

// BenchmarkReduceSweep isolates the reduction kernel on the atmserver
// sweep: every allocation of the ATM net (the full 2048-point product)
// through one shared Reducer, the way EnumerateDistinctReductions drives
// it. -benchmem makes the worklist kernel's allocation profile visible.
func BenchmarkReduceSweep(b *testing.B) {
	m := atm.New()
	allocs, err := core.EnumerateAllocations(m.Net, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(allocs)), "allocations")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd := core.NewReducer(m.Net)
		for _, a := range allocs {
			rd.Reduce(a)
		}
	}
}

// BenchmarkDedupClasses isolates the isomorphism-class partition on the
// atmserver reduction set: restriction-exact short-circuit, fingerprint
// bucketing, and the WL escalation for whatever buckets remain.
func BenchmarkDedupClasses(b *testing.B) {
	m := atm.New()
	reds, err := core.EnumerateDistinctReductions(m.Net, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(reds)), "reductions")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh reductions each round: the class partition's cost lives in
		// the lazy per-reduction caches (fingerprint, subnet, WL hash), so
		// reusing warmed reductions would measure only map assembly.
		if i > 0 {
			if reds, err = core.EnumerateDistinctReductions(m.Net, 0); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := core.DedupClasses(m.Net, reds, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIQSS reproduces the QSS column of Table I: the 2-task
// implementation driven by the 50-cell testbench.
func BenchmarkTableIQSS(b *testing.B) {
	m := atm.New()
	syn, err := Synthesize(m.Net, Options{})
	if err != nil {
		b.Fatal(err)
	}
	w := atm.NewWorkload(m, atm.DefaultWorkload())
	cost := rtos.DefaultCostModel()
	var clock int64
	for i := 0; i < b.N; i++ {
		server := atm.NewServer(m, atm.DefaultConfig())
		metrics, err := sim.RunQSSWithHooks(syn.Program, w.Events, cost, sim.Hooks{
			Resolver:    server.Resolver(),
			OnFire:      server.OnFire,
			BeforeEvent: w.CellFeeder(m, server),
		})
		if err != nil {
			b.Fatal(err)
		}
		clock = metrics.Cycles
	}
	b.ReportMetric(float64(len(syn.Program.Tasks)), "tasks")
	b.ReportMetric(float64(codegen.LineCount(syn.C(false))), "C-lines")
	b.ReportMetric(float64(clock), "clock-cycles")
}

// BenchmarkTableIFunctional reproduces the functional-partitioning column
// of Table I: five module tasks under dynamic scheduling, same testbench.
func BenchmarkTableIFunctional(b *testing.B) {
	m := atm.New()
	var modules []codegen.Module
	for _, mod := range m.Modules() {
		modules = append(modules, codegen.Module{Name: mod.Name, Transitions: mod.Transitions})
	}
	prog, err := codegen.GenerateModular(m.Net, modules)
	if err != nil {
		b.Fatal(err)
	}
	w := atm.NewWorkload(m, atm.DefaultWorkload())
	cost := rtos.DefaultCostModel()
	var clock int64
	for i := 0; i < b.N; i++ {
		server := atm.NewServer(m, atm.DefaultConfig())
		metrics, err := sim.RunModularWithHooks(prog, w.Events, cost, sim.Hooks{
			Resolver:    server.Resolver(),
			OnFire:      server.OnFire,
			BeforeEvent: w.CellFeeder(m, server),
		})
		if err != nil {
			b.Fatal(err)
		}
		clock = metrics.Cycles
	}
	b.ReportMetric(float64(len(prog.Tasks)), "tasks")
	b.ReportMetric(float64(codegen.LineCount(codegen.EmitC(prog, codegen.CConfig{}))), "C-lines")
	b.ReportMetric(float64(clock), "clock-cycles")
}

// BenchmarkTableIFull regenerates the whole table in one shot and reports
// the two ratios the paper's conclusion highlights.
func BenchmarkTableIFull(b *testing.B) {
	var res *atm.TableIResult
	for i := 0; i < b.N; i++ {
		r, err := atm.RunTableI(atm.DefaultWorkload(), rtos.DefaultCostModel())
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(float64(res.Functional.ClockCycles)/float64(res.QSS.ClockCycles), "cycle-ratio")
	b.ReportMetric(float64(res.Functional.LinesOfC)/float64(res.QSS.LinesOfC), "loc-ratio")
}

// BenchmarkAblationReductionDedup measures the effect of deduplicating
// T-reductions on the ATM model: 2048 allocations versus the distinct
// reductions actually scheduled.
func BenchmarkAblationReductionDedup(b *testing.B) {
	m := atm.New()
	for _, dedup := range []bool{true, false} {
		name := "dedup"
		if !dedup {
			name = "nodedup"
		}
		b.Run(name, func(b *testing.B) {
			tr := trace.New()
			var cycles int
			for i := 0; i < b.N; i++ {
				s, err := core.Solve(m.Net, core.Options{KeepDuplicateReductions: !dedup, Trace: tr})
				if err != nil {
					b.Fatal(err)
				}
				cycles = len(s.Cycles)
			}
			b.ReportMetric(float64(cycles), "cycles-in-schedule")
			// The per-phase trace shows where dedup saves the time: the
			// number of per-reduction schedulability checks per solve.
			if p, ok := tr.Report().Phase("core/check"); ok {
				b.ReportMetric(float64(p.Count)/float64(b.N), "checks/solve")
			}
		})
	}
}

// BenchmarkAblationOverheadSweep sweeps the RTOS activation cost and
// reports the Table I cycle ratio at each point: the crossover analysis
// the paper's tradeoff discussion calls for.
func BenchmarkAblationOverheadSweep(b *testing.B) {
	for _, activation := range []int64{0, 50, 150, 500, 1500} {
		b.Run(benchName("act", activation), func(b *testing.B) {
			cost := rtos.DefaultCostModel()
			cost.Activation = activation
			var ratio float64
			for i := 0; i < b.N; i++ {
				res, err := atm.RunTableI(atm.DefaultWorkload(), cost)
				if err != nil {
					b.Fatal(err)
				}
				ratio = float64(res.Functional.ClockCycles) / float64(res.QSS.ClockCycles)
			}
			b.ReportMetric(ratio, "cycle-ratio")
		})
	}
}

// BenchmarkAblationCycleSearch compares the cost of the exact Farkas
// invariant computation against the whole Solve on the figure nets: the
// paper's complexity discussion (reduction enumeration exponential,
// per-reduction scheduling polynomial).
func BenchmarkAblationCycleSearch(b *testing.B) {
	nets := figures.All()
	for _, name := range []string{"figure3a", "figure4", "figure5"} {
		n := nets[name]
		b.Run(name+"/invariants", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := invariant.TInvariants(n, invariant.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/solve", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(n, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationScheduleExplore runs the cycle-strategy exploration on
// the ATM model: the code-batching vs. buffer-memory tradeoff the paper's
// conclusion proposes to explore.
func BenchmarkAblationScheduleExplore(b *testing.B) {
	m := atm.New()
	tr := trace.New()
	var pts []core.TradeoffPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = core.Explore(m.Net, core.Options{Trace: tr})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, pt := range pts {
		b.ReportMetric(float64(pt.TotalBufferBound), pt.Strategy.String()+"-buffers")
	}
	// Split the exploration's cost between the strategy loop and the
	// per-strategy cycle realisations it nests.
	rep := tr.Report()
	if p, ok := rep.Phase("core/explore"); ok && b.N > 0 {
		b.ReportMetric(p.TotalMS/float64(b.N), "explore-ms/op")
	}
	if p, ok := rep.Phase("core/cycle"); ok && b.N > 0 {
		b.ReportMetric(float64(p.Count)/float64(b.N), "cycle-searches/op")
	}
}

// BenchmarkAblationSafeNetBaseline contrasts Lin's safe-net synthesis
// (rejects every net of the paper: they all have environment inputs) with
// QSS on the figure nets, plus the state-machine synthesis on a safe
// closed control loop where Lin's method does apply.
func BenchmarkAblationSafeNetBaseline(b *testing.B) {
	b.Run("figures-rejected", func(b *testing.B) {
		nets := figures.All()
		for i := 0; i < b.N; i++ {
			for _, name := range []string{"figure3a", "figure4", "figure5"} {
				if _, err := safenet.Synthesize(nets[name], safenet.Options{}); err == nil {
					b.Fatal("Lin's method must reject nets with environment inputs")
				}
			}
		}
	})
	b.Run("safe-loop", func(b *testing.B) {
		nb := NewBuilder("loop")
		idle := nb.MarkedPlace("idle", 1)
		decide := nb.Place("decide")
		poll := nb.Transition("poll")
		work := nb.Transition("work")
		skip := nb.Transition("skip")
		nb.Chain(idle, poll, decide)
		nb.Arc(decide, work)
		nb.Arc(decide, skip)
		nb.ArcTP(work, idle)
		nb.ArcTP(skip, idle)
		n := nb.Build()
		var states int
		for i := 0; i < b.N; i++ {
			res, err := safenet.Synthesize(n, safenet.Options{})
			if err != nil {
				b.Fatal(err)
			}
			states = res.States
		}
		b.ReportMetric(float64(states), "states")
	})
}

// BenchmarkAblationWorkloadSweep sweeps the cell arrival burstiness and
// reports the Table I cycle ratio at each point: the QSS advantage must
// persist across traffic shapes, not just at the default workload.
func BenchmarkAblationWorkloadSweep(b *testing.B) {
	for _, gap := range []int64{2, 4, 8, 16} {
		b.Run(benchName("gap", gap), func(b *testing.B) {
			wl := atm.DefaultWorkload()
			wl.CellMeanGap = gap
			var ratio float64
			for i := 0; i < b.N; i++ {
				res, err := atm.RunTableI(wl, rtos.DefaultCostModel())
				if err != nil {
					b.Fatal(err)
				}
				ratio = float64(res.Functional.ClockCycles) / float64(res.QSS.ClockCycles)
			}
			b.ReportMetric(ratio, "cycle-ratio")
		})
	}
}

// BenchmarkAblationResponseTimes measures worst/average per-event response
// time of both ATM implementations on a single CPU with real arrival
// times — the real-time facet of the paper's motivation.
func BenchmarkAblationResponseTimes(b *testing.B) {
	var res *atm.ResponseResult
	for i := 0; i < b.N; i++ {
		r, err := atm.RunResponseTimes(atm.DefaultWorkload(), rtos.DefaultCostModel(), 400, 0)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(float64(res.QSS.ResponseMax), "qss-resp-max")
	b.ReportMetric(float64(res.Functional.ResponseMax), "func-resp-max")
	b.ReportMetric(float64(res.QSS.ResponseAvg), "qss-resp-avg")
	b.ReportMetric(float64(res.Functional.ResponseAvg), "func-resp-avg")
}

// BenchmarkAblationBDFBaseline contrasts Buck-style bounded BDF search
// (three-valued: it can only answer "unknown" on the adversarial join)
// with the decisive QSS verdict on the FCPN abstraction — the paper's
// decidability argument, measured.
func BenchmarkAblationBDFBaseline(b *testing.B) {
	g := bdf.NewGraph()
	src := g.AddCompute("src")
	sw := g.AddSwitch("sw")
	join := g.AddCompute("join")
	check := func(err error) {
		if err != nil {
			b.Fatal(err)
		}
	}
	check(g.Connect(src, src, 1, 1, 1))
	check(g.Connect(src, sw, 1, 1, 0))
	check(g.ConnectRole(src, bdf.RoleData, sw, bdf.RoleControl, 0))
	check(g.ConnectRole(sw, bdf.RoleTrue, join, bdf.RoleData, 0))
	check(g.ConnectRole(sw, bdf.RoleFalse, join, bdf.RoleData, 0))
	b.Run("bdf-bounded-search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			verdict, _, err := g.CheckBoundedSchedulable(4, 0)
			if err != nil || verdict != bdf.Unknown {
				b.Fatalf("verdict = %v, %v", verdict, err)
			}
		}
	})
	b.Run("fcpn-decides", func(b *testing.B) {
		n, err := g.Abstract("join")
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := core.Solve(n, core.Options{}); err == nil {
				b.Fatal("abstraction must be definitively not schedulable")
			}
		}
	})
}

// BenchmarkModemComparison runs the second case study (an extension): the
// soft-modem receive path, specified through the process-network frontend,
// QSS (2 tasks) versus a 3-module functional baseline.
func BenchmarkModemComparison(b *testing.B) {
	var res *modem.ComparisonResult
	for i := 0; i < b.N; i++ {
		r, err := modem.RunComparison(modem.DefaultWorkload(), rtos.DefaultCostModel())
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(float64(res.QSS.ClockCycles), "qss-cycles")
	b.ReportMetric(float64(res.Functional.ClockCycles), "func-cycles")
	b.ReportMetric(float64(res.Functional.ClockCycles)/float64(res.QSS.ClockCycles), "cycle-ratio")
}

// BenchmarkScalingSolve measures full-pipeline synthesis time on randomly
// generated schedulable nets of growing choice depth: the practical face
// of the paper's complexity discussion.
func BenchmarkScalingSolve(b *testing.B) {
	for _, depth := range []int{3, 5, 7, 9} {
		cfg := netgen.Config{
			MaxSources:   2,
			MaxDepth:     depth,
			MaxBranch:    2,
			MaxWeight:    3,
			ChoicePct:    60,
			MultiratePct: 25,
		}
		n := netgen.RandomSchedulablePipeline(uint64(depth)*977, cfg)
		b.Run(benchName("depth", int64(depth)), func(b *testing.B) {
			var cycles int
			for i := 0; i < b.N; i++ {
				syn, err := Synthesize(n, Options{})
				if err != nil {
					b.Fatal(err)
				}
				cycles = len(syn.Schedule.Cycles)
			}
			b.ReportMetric(float64(n.NumTransitions()), "transitions")
			b.ReportMetric(float64(cycles), "cycles-in-schedule")
		})
	}
}

func benchName(prefix string, v int64) string {
	const digits = "0123456789"
	if v == 0 {
		return prefix + "0"
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return prefix + string(buf[i:])
}

package fcpn

import (
	"fmt"
	"io"

	"fcpn/internal/codegen"
	"fcpn/internal/core"
	"fcpn/internal/engine"
	"fcpn/internal/engine/stats"
	"fcpn/internal/petri"
	"fcpn/internal/spec"
	"fcpn/internal/trace"
)

// Re-exported model types. The aliases let callers hold and build nets
// through this package without importing the internal packages.
type (
	// Net is an immutable weighted place/transition net.
	Net = petri.Net
	// Builder incrementally constructs a Net.
	Builder = petri.Builder
	// Place and Transition index a net's nodes.
	Place = petri.Place
	// Transition indexes a net's transitions.
	Transition = petri.Transition
	// Marking is a token-count vector.
	Marking = petri.Marking

	// Options tunes the scheduler (allocation caps, dedup, …).
	Options = core.Options
	// Schedule is a valid quasi-static schedule: one finite complete
	// cycle per distinct T-reduction.
	Schedule = core.Schedule
	// Cycle is one finite complete cycle of a Schedule.
	Cycle = core.Cycle
	// TaskPartition groups transitions into minimum-count tasks.
	TaskPartition = core.TaskPartition
	// Task is one software task (a dependent-rate source group).
	Task = core.Task
	// NotSchedulableError diagnoses why no valid schedule exists.
	NotSchedulableError = core.NotSchedulableError

	// Program is generated task code (C-emittable and interpretable).
	Program = codegen.Program
	// CConfig tunes the C backend.
	CConfig = codegen.CConfig
	// ChoiceResolver supplies run-time values for free choices.
	ChoiceResolver = codegen.ChoiceResolver
	// Interp executes generated task code.
	Interp = codegen.Interp

	// System is a process-network specification that compiles to an FCPN.
	System = spec.System
	// Process is one reactive process of a System.
	Process = spec.Process
	// Branch is one alternative of a Process.If.
	Branch = spec.Branch
	// ChannelID names a System channel, input or output.
	ChannelID = spec.ChannelID
)

// ErrNotFreeChoice is returned for nets outside the FCPN class.
var ErrNotFreeChoice = petri.ErrNotFreeChoice

// NewBuilder starts a new net with the given name.
func NewBuilder(name string) *Builder { return petri.NewBuilder(name) }

// BuildError reports structural misuse during programmatic net
// construction (duplicate names, unknown endpoints, non-positive weights,
// negative markings). Build converts the internal builder's panics into
// this type at the public API boundary.
type BuildError struct {
	// Reason is the builder's diagnosis.
	Reason string
}

func (e *BuildError) Error() string { return "fcpn: invalid net construction: " + e.Reason }

// Build constructs a net programmatically, converting builder panics on
// malformed input into a *BuildError. The internal builder panics by
// design (nets are normally built by trusted code); Build is the safe
// boundary for callers assembling nets from untrusted or computed input:
//
//	net, err := fcpn.Build("demo", func(b *fcpn.Builder) {
//	        p := b.Place(userName) // may panic on duplicates...
//	        b.Arc(p, b.Transition("t"))
//	})                             // ...returned here as *BuildError
func Build(name string, construct func(*Builder)) (n *Net, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &BuildError{Reason: fmt.Sprint(r)}
		}
	}()
	b := petri.NewBuilder(name)
	construct(b)
	return b.Build(), nil
}

// ErrBudgetExceeded is the typed cause behind every structured step
// budget in the pipeline (schedule search caps, interpreter op budgets,
// robust-simulation step budgets). Test with errors.Is.
var ErrBudgetExceeded = core.ErrBudgetExceeded

// NewSystem starts a process-network specification; compile it with
// (*System).Compile and pass the net to Synthesize.
func NewSystem(name string) *System { return spec.NewSystem(name) }

// Parse reads a net in the textual format (see internal/petri.Parse for
// the grammar: net/place/trans/arc directives with '#' comments).
func Parse(r io.Reader) (*Net, error) { return petri.Parse(r) }

// ParseString parses an in-memory net description.
func ParseString(s string) (*Net, error) { return petri.ParseString(s) }

// MustParseString is ParseString, panicking on malformed input; for
// literals in tests and examples.
func MustParseString(s string) *Net {
	n, err := petri.ParseString(s)
	if err != nil {
		panic(err)
	}
	return n
}

// Format renders a net in the textual format.
func Format(n *Net) string { return petri.Format(n) }

// DOT renders a net in Graphviz syntax.
func DOT(n *Net) string { return n.DOT() }

// Solve checks quasi-static schedulability and returns the valid schedule
// (Section 3 of the paper). A *NotSchedulableError explains failures.
func Solve(n *Net, opt Options) (*Schedule, error) { return core.Solve(n, opt) }

// Schedulable reports whether a valid schedule exists.
func Schedulable(n *Net, opt Options) bool { return core.Schedulable(n, opt) }

// PartitionTasks computes the minimum task partition: one task per group
// of dependent-rate source transitions.
func PartitionTasks(n *Net, opt Options) (*TaskPartition, error) {
	return core.PartitionTasks(n, opt)
}

// Generate lowers a schedule and partition to task code.
func Generate(s *Schedule, tp *TaskPartition) (*Program, error) {
	return codegen.Generate(s, tp)
}

// EmitC renders generated code as a C translation unit.
func EmitC(p *Program, cfg CConfig) string { return codegen.EmitC(p, cfg) }

// NewInterp prepares an interpreter over generated code with the given
// choice resolver; counters start at the net's initial marking.
func NewInterp(p *Program, resolve ChoiceResolver) *Interp {
	return codegen.NewInterp(p, resolve)
}

// Synthesis bundles the full result of software synthesis for one net.
type Synthesis struct {
	Net       *Net
	Schedule  *Schedule
	Partition *TaskPartition
	Program   *Program
}

// Synthesize runs the complete pipeline of the paper: schedulability check
// and valid schedule (Section 3), minimum task partition, and code
// generation (Section 4).
func Synthesize(n *Net, opt Options) (*Synthesis, error) {
	sched, err := core.Solve(n, opt)
	if err != nil {
		return nil, err
	}
	tp, err := core.PartitionTasks(n, opt)
	if err != nil {
		return nil, err
	}
	prog, err := codegen.Generate(sched, tp)
	if err != nil {
		return nil, err
	}
	return &Synthesis{Net: n, Schedule: sched, Partition: tp, Program: prog}, nil
}

// C renders the synthesised implementation as C source. With standalone
// set, a main() driving the tasks round-robin is appended (the paper's
// Section 4 listing style); otherwise only the RTOS task functions are
// emitted.
func (s *Synthesis) C(standalone bool) string {
	return codegen.EmitC(s.Program, codegen.CConfig{Standalone: standalone})
}

// NumTasks reports the number of synthesised tasks.
func (s *Synthesis) NumTasks() int { return len(s.Program.Tasks) }

// BufferBounds reports per-place static buffer bounds from the schedule.
func (s *Synthesis) BufferBounds() ([]int, error) { return s.Schedule.BufferBounds() }

// Concurrent analysis engine (see docs/ENGINE.md). The aliases expose the
// engine service through this package.
type (
	// Engine is the long-running, goroutine-safe analysis service with a
	// bounded worker pool and a content-addressed result cache; create
	// with NewEngine, Close when done.
	Engine = engine.Engine
	// EngineConfig tunes an Engine (workers, cache capacity, solver
	// options); the zero value is usable.
	EngineConfig = engine.Config
	// NetReport is the engine's deterministic per-net analysis report.
	NetReport = engine.NetReport
	// EngineResult pairs a NetReport with its wall-clock analysis time.
	EngineResult = engine.Result
	// EngineStats is a snapshot of the engine's counters (jobs, cache
	// hits/misses, worker utilisation) and its lifetime phase trace.
	EngineStats = stats.Snapshot
	// TraceReport is a per-phase timing breakdown (see internal/trace
	// and docs/TRACING.md): per-job in EngineResult.Trace, engine-wide
	// in EngineStats.Trace.
	TraceReport = trace.Report
)

// ErrEngineClosed is returned by engine methods called after Close.
var ErrEngineClosed = engine.ErrEngineClosed

// NewEngine starts a concurrent analysis engine. Results are independent
// of the worker count, and cache hits are byte-identical to cold runs.
func NewEngine(cfg EngineConfig) *Engine { return engine.New(cfg) }

// CanonicalHash returns the net's canonical structural hash — stable
// under renaming and declaration reordering — which keys the engine's
// content-addressed cache.
func CanonicalHash(n *Net) string { return n.CanonicalHash() }

// Analyze runs the engine's full structural + behavioural analysis of one
// net through an ephemeral engine. For batches or repeated queries, keep
// a NewEngine instance instead so the cache is shared.
func Analyze(n *Net, opt Options) (*NetReport, error) {
	e := engine.New(engine.Config{Workers: 1, Core: opt})
	defer e.Close()
	return e.Analyze(n)
}

// TradeoffPoint re-exports the schedule-exploration result type.
type TradeoffPoint = core.TradeoffPoint

// CycleStrategy selects a cycle-realisation policy for Explore.
type CycleStrategy = core.CycleStrategy

// Cycle strategies (see core.Explore): balanced interleaving, maximal
// batching, eager draining.
const (
	StrategyRoundRobin = core.StrategyRoundRobin
	StrategyBatch      = core.StrategyBatch
	StrategyDemand     = core.StrategyDemand
)

// Explore solves the net once per cycle strategy and reports each
// schedule's buffer/batching tradeoff (the paper's §6 future work).
func Explore(n *Net, opt Options) ([]TradeoffPoint, error) { return core.Explore(n, opt) }

// Simplify applies Murata's structural reduction rules (series/parallel
// fusions, self-loop elimination) with environment-preserving guards,
// returning the reduced net and the rewrite trace. The quasi-static
// schedulability verdict is invariant under Simplify.
func Simplify(n *Net) (*Net, []string) { return petri.Simplify(n) }

// ImportSchedule validates and reconstructs a schedule from its exported
// form (e.g. parsed from the JSON emitted by qss -json).
func ImportSchedule(n *Net, ex *core.ScheduleExport) (*Schedule, error) {
	return core.ImportSchedule(n, ex)
}

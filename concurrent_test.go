package fcpn_test

import (
	"encoding/json"
	"sync"
	"testing"

	"fcpn"
	"fcpn/internal/figures"
)

// TestConcurrentPublicAPI is the -race regression test for the public
// entry points: many goroutines call Solve, Synthesize, and Analyze on
// the same shared figure nets, and every goroutine must see the same
// result. Nets are immutable and the engine is goroutine-safe, so this
// must be data-race free under `go test -race`.
func TestConcurrentPublicAPI(t *testing.T) {
	nets := []*fcpn.Net{figures.Figure2(), figures.Figure4(), figures.Figure5()}
	e := fcpn.NewEngine(fcpn.EngineConfig{Workers: 4})
	defer e.Close()

	type observed struct {
		schedule string
		c        string
		report   string
	}
	want := make([]observed, len(nets))
	for i, n := range nets {
		s, err := fcpn.Solve(n, fcpn.Options{})
		if err != nil {
			t.Fatalf("net %q: %v", n.Name(), err)
		}
		ex, err := json.Marshal(s.Export())
		if err != nil {
			t.Fatal(err)
		}
		syn, err := fcpn.Synthesize(n, fcpn.Options{})
		if err != nil {
			t.Fatal(err)
		}
		nr, err := e.Analyze(n)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := json.Marshal(nr)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = observed{schedule: string(ex), c: syn.C(true), report: string(rep)}
	}

	const goroutines = 8
	const rounds = 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(nets)
				n := nets[i]
				s, err := fcpn.Solve(n, fcpn.Options{Workers: 2})
				if err != nil {
					errs <- err
					return
				}
				ex, _ := json.Marshal(s.Export())
				if string(ex) != want[i].schedule {
					t.Errorf("goroutine %d: schedule for %q diverged", g, n.Name())
				}
				syn, err := fcpn.Synthesize(n, fcpn.Options{})
				if err != nil {
					errs <- err
					return
				}
				if syn.C(true) != want[i].c {
					t.Errorf("goroutine %d: generated C for %q diverged", g, n.Name())
				}
				nr, err := e.Analyze(n)
				if err != nil {
					errs <- err
					return
				}
				rep, _ := json.Marshal(nr)
				if string(rep) != want[i].report {
					t.Errorf("goroutine %d: engine report for %q diverged", g, n.Name())
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s := e.Stats(); s.CacheHits == 0 {
		t.Error("shared engine saw no cache hits")
	}
}

package fcpn

// experiments_test.go is the executable index of EXPERIMENTS.md: one test
// per documented claim, asserting the exact numbers the document states.
// The per-package tests cover the same ground in more depth; this file
// exists so that a single `go test -run TestExperiments .` certifies the
// document end to end.

import (
	"strings"
	"testing"

	"fcpn/internal/atm"
	"fcpn/internal/bdf"
	"fcpn/internal/core"
	"fcpn/internal/figures"
	"fcpn/internal/modem"
	"fcpn/internal/rtos"
	"fcpn/internal/safenet"
	"fcpn/internal/sdf"
)

func TestExperimentsFigure1(t *testing.T) {
	if !figures.Figure1a().IsFreeChoice() {
		t.Fatal("figure 1a must be free-choice")
	}
	if figures.Figure1b().IsFreeChoice() {
		t.Fatal("figure 1b must not be free-choice")
	}
}

func TestExperimentsFigure2(t *testing.T) {
	g, err := sdf.FromPetri(figures.Figure2())
	if err != nil {
		t.Fatal(err)
	}
	q, err := g.RepetitionVector()
	if err != nil || q[0] != 4 || q[1] != 2 || q[2] != 1 {
		t.Fatalf("f(σ) = %v, want (4,2,1)", q)
	}
	sched, err := g.Schedule()
	if err != nil || len(sched) != 7 {
		t.Fatalf("cycle length = %d, want 7", len(sched))
	}
}

func TestExperimentsFigure3(t *testing.T) {
	s, err := Solve(figures.Figure3a(), Options{})
	if err != nil || len(s.Cycles) != 2 {
		t.Fatalf("figure 3a: %v", err)
	}
	cycles := map[string]bool{}
	for _, names := range s.CycleStrings() {
		cycles[strings.Join(names, " ")] = true
	}
	if !cycles["t1 t2 t4"] || !cycles["t1 t3 t5"] {
		t.Fatalf("cycles = %v, want the paper's {(t1 t2 t4),(t1 t3 t5)}", cycles)
	}
	if Schedulable(figures.Figure3b(), Options{}) {
		t.Fatal("figure 3b must not be schedulable")
	}
}

func TestExperimentsFigure4(t *testing.T) {
	s, err := Solve(figures.Figure4(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cycles := map[string]bool{}
	for _, names := range s.CycleStrings() {
		cycles[strings.Join(names, " ")] = true
	}
	if !cycles["t1 t2 t1 t2 t4"] || !cycles["t1 t3 t5 t5"] {
		t.Fatalf("cycles = %v, want the paper's {(t1 t2 t1 t2 t4),(t1 t3 t5 t5)}", cycles)
	}
	// The Section 4 C listing's control structure.
	syn, err := Synthesize(figures.Figure4(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := syn.C(false)
	for _, frag := range []string{
		"if (read_p1())",
		"if (n_p2 >= 2)",
		"while (n_p3 >= 1)",
	} {
		if !strings.Contains(src, frag) {
			t.Fatalf("C missing %q", frag)
		}
	}
}

func TestExperimentsFigure5and6(t *testing.T) {
	n := figures.Figure5()
	// R1's invariants, as the paper lists them over (t1…t9).
	allocs, err := core.EnumerateAllocations(n, 0)
	if err != nil || len(allocs) != 2 {
		t.Fatalf("allocations = %d (%v)", len(allocs), err)
	}
	for _, a := range allocs {
		red := core.Reduce(n, a)
		if n.TransitionName(a.Chosen[0]) != "t2" {
			continue
		}
		rep := core.CheckReduction(n, red, core.Options{})
		got := map[string]bool{}
		for _, ti := range rep.Invariants {
			got[ti.String()] = true
		}
		if !got["[1 1 2 4 0 0]"] || !got["[0 0 0 1 1 1]"] {
			t.Fatalf("R1 invariants = %v", got)
		}
		if first := red.Steps()[0]; first != "remove t3 (unallocated)" {
			t.Fatalf("figure 6 first step = %q", first)
		}
	}
	tp, err := PartitionTasks(n, Options{})
	if err != nil || tp.NumTasks() != 2 {
		t.Fatalf("tasks = %d (%v)", tp.NumTasks(), err)
	}
}

func TestExperimentsFigure7(t *testing.T) {
	_, err := Solve(figures.Figure7(), Options{})
	nse, ok := err.(*NotSchedulableError)
	if !ok || nse.Report.Consistent {
		t.Fatalf("figure 7 verdict = %v", err)
	}
}

func TestExperimentsATMAndTableI(t *testing.T) {
	m := atm.New()
	if m.Net.NumTransitions() != 49 || m.Net.NumPlaces() != 41 ||
		len(m.Net.FreeChoiceSets()) != 11 {
		t.Fatal("ATM shape drifted from 49/41/11")
	}
	s, err := Solve(m.Net, Options{})
	if err != nil || len(s.Cycles) != 56 || s.AllocationCount != 2048 {
		t.Fatalf("ATM schedule: cycles=%d allocations=%d (%v)", len(s.Cycles), s.AllocationCount, err)
	}
	res, err := atm.RunTableI(atm.DefaultWorkload(), rtos.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if res.QSS.Tasks != 2 || res.Functional.Tasks != 5 {
		t.Fatalf("tasks = %d vs %d, want 2 vs 5", res.QSS.Tasks, res.Functional.Tasks)
	}
	cycleRatio := float64(res.Functional.ClockCycles) / float64(res.QSS.ClockCycles)
	locRatio := float64(res.Functional.LinesOfC) / float64(res.QSS.LinesOfC)
	if cycleRatio < 1.2 || cycleRatio > 1.6 {
		t.Fatalf("cycle ratio %.2f outside documented 1.38 band", cycleRatio)
	}
	if locRatio < 1.2 || locRatio > 1.6 {
		t.Fatalf("code ratio %.2f outside documented 1.39 band", locRatio)
	}
}

func TestExperimentsAblations(t *testing.T) {
	// Dedup: 2048 cycles without it.
	m := atm.New()
	s, err := Solve(m.Net, Options{KeepDuplicateReductions: true})
	if err != nil || len(s.Cycles) != 2048 {
		t.Fatalf("nodedup cycles = %d (%v)", len(s.Cycles), err)
	}
	// Exploration: batch ≥ demand buffers on the ATM model.
	pts, err := Explore(m.Net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var batch, demand int
	for _, pt := range pts {
		switch pt.Strategy {
		case StrategyBatch:
			batch = pt.TotalBufferBound
		case StrategyDemand:
			demand = pt.TotalBufferBound
		}
	}
	if batch < 4*demand {
		t.Fatalf("documented ~5× batch/demand buffer gap missing: %d vs %d", batch, demand)
	}
	// Response times: functional worst case exceeds QSS's.
	rr, err := atm.RunResponseTimes(atm.DefaultWorkload(), rtos.DefaultCostModel(), 400, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Functional.ResponseMax < 3*rr.QSS.ResponseMax {
		t.Fatalf("documented ~5× response gap missing: %d vs %d",
			rr.Functional.ResponseMax, rr.QSS.ResponseMax)
	}
}

func TestExperimentsBaselines(t *testing.T) {
	// Lin's method rejects every net of the paper.
	for _, n := range []string{"figure3a", "figure4", "figure5"} {
		if _, err := safenet.Synthesize(figures.All()[n], safenet.Options{}); err == nil {
			t.Fatalf("%s: safe-net baseline must reject environment inputs", n)
		}
	}
	// BDF adversarial join: three-valued search says unknown; the FCPN
	// abstraction decides.
	g := bdf.NewGraph()
	src := g.AddCompute("src")
	sw := g.AddSwitch("sw")
	join := g.AddCompute("join")
	for _, err := range []error{
		g.Connect(src, src, 1, 1, 1),
		g.Connect(src, sw, 1, 1, 0),
		g.ConnectRole(src, bdf.RoleData, sw, bdf.RoleControl, 0),
		g.ConnectRole(sw, bdf.RoleTrue, join, bdf.RoleData, 0),
		g.ConnectRole(sw, bdf.RoleFalse, join, bdf.RoleData, 0),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	verdict, _, err := g.CheckBoundedSchedulable(4, 0)
	if err != nil || verdict != bdf.Unknown {
		t.Fatalf("BDF verdict = %v (%v), want unknown", verdict, err)
	}
	abs, err := g.Abstract("join")
	if err != nil {
		t.Fatal(err)
	}
	if Schedulable(abs, Options{}) {
		t.Fatal("FCPN abstraction must decide not-schedulable")
	}
}

func TestExperimentsModem(t *testing.T) {
	res, err := modem.RunComparison(modem.DefaultWorkload(), rtos.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.Functional.ClockCycles) / float64(res.QSS.ClockCycles)
	if res.QSS.Tasks != 2 || res.Functional.Tasks != 3 {
		t.Fatalf("modem tasks = %d vs %d", res.QSS.Tasks, res.Functional.Tasks)
	}
	if ratio < 1.1 || ratio > 1.5 {
		t.Fatalf("modem cycle ratio %.2f outside documented 1.27 band", ratio)
	}
}

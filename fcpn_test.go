package fcpn

import (
	"errors"
	"strings"
	"testing"

	"fcpn/internal/figures"
)

const fig3aSpec = `
net figure3a
trans t1
trans t2
trans t3
trans t4
trans t5
place p1
place p2
place p3
arc t1 -> p1
arc p1 -> t2 -> p2 -> t4
arc p1 -> t3 -> p3 -> t5
`

func TestFacadeEndToEnd(t *testing.T) {
	n := MustParseString(fig3aSpec)
	syn, err := Synthesize(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if syn.NumTasks() != 1 {
		t.Fatalf("tasks = %d", syn.NumTasks())
	}
	if len(syn.Schedule.Cycles) != 2 {
		t.Fatalf("cycles = %d", len(syn.Schedule.Cycles))
	}
	src := syn.C(true)
	for _, frag := range []string{"void task_t1(void)", "if (read_p1())", "int main(void)"} {
		if !strings.Contains(src, frag) {
			t.Fatalf("C output missing %q:\n%s", frag, src)
		}
	}
	if !strings.Contains(syn.C(false), "task_t1") || strings.Contains(syn.C(false), "int main") {
		t.Fatal("non-standalone mode wrong")
	}
	bounds, err := syn.BufferBounds()
	if err != nil || len(bounds) != n.NumPlaces() {
		t.Fatalf("BufferBounds = %v, %v", bounds, err)
	}
}

func TestFacadeNotSchedulable(t *testing.T) {
	_, err := Synthesize(figures.Figure3b(), Options{})
	var nse *NotSchedulableError
	if !errors.As(err, &nse) {
		t.Fatalf("err = %v", err)
	}
}

func TestFacadeNotFreeChoice(t *testing.T) {
	if _, err := Solve(figures.Figure1b(), Options{}); !errors.Is(err, ErrNotFreeChoice) {
		t.Fatalf("err = %v", err)
	}
}

func TestFacadeHelpers(t *testing.T) {
	n := MustParseString(fig3aSpec)
	if !Schedulable(n, Options{}) {
		t.Fatal("fig3a is schedulable")
	}
	if Format(n) == "" || DOT(n) == "" {
		t.Fatal("formatters empty")
	}
	back, err := ParseString(Format(n))
	if err != nil || back.NumTransitions() != n.NumTransitions() {
		t.Fatalf("round trip: %v", err)
	}
	if _, err := Parse(strings.NewReader("bogus")); err == nil {
		t.Fatal("Parse must propagate errors")
	}
	tp, err := PartitionTasks(n, Options{})
	if err != nil || tp.NumTasks() != 1 {
		t.Fatalf("PartitionTasks: %v %v", tp, err)
	}
	s, err := Solve(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Generate(s, tp)
	if err != nil {
		t.Fatal(err)
	}
	if EmitC(prog, CConfig{}) == "" {
		t.Fatal("EmitC empty")
	}
	in := NewInterp(prog, func(Place, []Transition) int { return 0 })
	t1, _ := n.TransitionByName("t1")
	if err := in.RunSource(t1); err != nil {
		t.Fatal(err)
	}
}

func TestMustParseStringPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParseString("place place place")
}

func TestBuilderThroughFacade(t *testing.T) {
	b := NewBuilder("mini")
	src := b.Transition("in")
	p := b.Place("p")
	sink := b.Transition("out")
	b.Chain(src, p, sink)
	n := b.Build()
	syn, err := Synthesize(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if syn.NumTasks() != 1 {
		t.Fatalf("tasks = %d", syn.NumTasks())
	}
}

func TestFacadeExploreSimplify(t *testing.T) {
	n := MustParseString(fig3aSpec)
	pts, err := Explore(n, Options{})
	if err != nil || len(pts) != 3 {
		t.Fatalf("Explore = %v, %v", pts, err)
	}
	if pts[0].Strategy != StrategyRoundRobin {
		t.Fatalf("first strategy = %v", pts[0].Strategy)
	}
	red, _ := Simplify(n)
	if Schedulable(red, Options{}) != Schedulable(n, Options{}) {
		t.Fatal("Simplify changed the verdict")
	}
	s, err := Solve(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	back, err := ImportSchedule(n, s.Export())
	if err != nil || len(back.Cycles) != len(s.Cycles) {
		t.Fatalf("ImportSchedule: %v", err)
	}
	if s.FormatTree() == "" {
		t.Fatal("empty tree")
	}
}
